"""GPSFormer — the spatial-temporal transformer encoder (§IV-F).

Pipeline per Eq. 12-13:

1. Sub-Graph Generation turns each GPS point into a weighted sub-graph;
   node features are gathered from X_road and pooled (Eq. 6) into the
   initial per-point vector, concatenated with the normalized timestamp
   and grid index (H^traj, d+3) and projected to d.
2. Sinusoidal position embeddings are added (Eq. 12).
3. N GPSFormerBlocks alternate a transformer encoder layer (temporal) with
   a Graph Refinement Layer (spatial) and a graph readout that feeds the
   next block.
4. The trajectory-level vector ĥ^traj mean-pools the outputs and fuses the
   environmental context f_e (hour one-hot + holiday flag, 25 dims).

With ``use_grl=False`` (Table V "w/o GRL") blocks degenerate to plain
transformer layers and the graph tensors pass through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn, profile
from ..nn.tensor import Tensor, gather_rows, is_grad_enabled
from ..geo.grid import Grid
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import Batch
from .config import RNTrajRecConfig
from .graph_refinement import GraphRefinementLayer, mean_graph_readout, weighted_graph_readout
from .grid_gnn import build_road_encoder
from .subgraph_gen import SubGraphBatch, SubGraphGenerator

ENV_CONTEXT_DIM = 25  # 24-hour one-hot + holiday flag (§VI-A3)
POINT_CONTEXT_DIM = 7  # time, grid row/col, and 4 motion-delta features


def point_context_features(batch: Batch, grid: Grid, delta_scale: float = 1000.0) -> np.ndarray:
    """Shared per-point context: normalized time, grid index, motion deltas.

    The first three dimensions are the paper's H^traj extras (§IV-C).  The
    four delta features (displacement to the previous and next input fix,
    normalized by ``delta_scale`` meters) expose heading explicitly — with
    the paper's 150k-trajectory corpora heading is learnable from context
    alone, at this reproduction's data scale it must be given.  Every
    encoder (RNTrajRec and all baselines) receives the same features, so
    comparisons stay fair (see DESIGN.md).
    """
    duration = np.maximum(batch.input_times[:, -1:], 1e-9)
    t_norm = (batch.input_times / duration)[:, :, None]
    rows, cols = grid.cell_of(batch.input_xy[..., 0], batch.input_xy[..., 1])
    grid_norm = np.stack(
        [rows / max(grid.rows - 1, 1), cols / max(grid.cols - 1, 1)], axis=-1
    )
    deltas = np.diff(batch.input_xy, axis=1) / delta_scale  # (b, l-1, 2)
    zeros = np.zeros((batch.size, 1, 2))
    delta_prev = np.concatenate([zeros, deltas], axis=1)
    delta_next = np.concatenate([deltas, zeros], axis=1)
    return np.concatenate([t_norm, grid_norm, delta_prev, delta_next], axis=-1)


@dataclass
class EncoderOutput:
    """Everything downstream consumers need from the encoder."""

    point_features: Tensor        # (b, l_τ, d) — H^traj
    trajectory_feature: Tensor    # (b, d) — ĥ^traj
    node_features: Optional[Tensor]   # final Z for the graph loss (flat nodes)
    graphs: Optional[SubGraphBatch]


class GPSFormerBlock(nn.Module):
    """Transformer encoder layer + graph refinement layer (Eq. 13)."""

    def __init__(self, config: RNTrajRecConfig, seed: int = 0) -> None:
        super().__init__()
        d = config.hidden_dim
        self.config = config
        self.temporal = nn.TransformerEncoderLayer(
            d, config.num_heads, ffn_dim=2 * d, dropout=config.dropout, seed=seed
        )
        if config.use_grl:
            self.spatial = GraphRefinementLayer(config)
        if config.weight_refinement not in ("none", "sigmoid", "softmax"):
            raise ValueError(f"unknown weight_refinement {config.weight_refinement!r}")
        if config.weight_refinement != "none":
            # §VI-I: learn new per-node readout weights from the refined
            # embeddings (the paper's reported-negative variant).
            self.weight_head = nn.Linear(d, 1)

    def _refined_readout(self, refined: Tensor, graphs: SubGraphBatch) -> Tensor:
        from ..nn.tensor import segment_softmax, segment_sum

        scores = self.weight_head(refined)  # (nodes, 1)
        if self.config.weight_refinement == "sigmoid":
            weights = scores.sigmoid()
            total = segment_sum(weights, graphs.graph_ids, graphs.num_graphs)
            weighted = segment_sum(refined * weights, graphs.graph_ids, graphs.num_graphs)
            return weighted / (total + 1e-9)
        weights = segment_softmax(scores.reshape(-1), graphs.graph_ids, graphs.num_graphs)
        return segment_sum(refined * weights.reshape(-1, 1), graphs.graph_ids, graphs.num_graphs)

    def forward(
        self,
        hidden: Tensor,
        node_features: Optional[Tensor],
        graphs: Optional[SubGraphBatch],
    ) -> Tuple[Tensor, Optional[Tensor]]:
        b, l, d = hidden.shape
        transformed = self.temporal(hidden)
        if not self.config.use_grl or graphs is None:
            return transformed, node_features

        per_step = transformed.reshape(b * l, d)
        refined = self.spatial(per_step, node_features, graphs)
        if self.config.weight_refinement != "none":
            pooled = self._refined_readout(refined, graphs)
        else:
            pooled = mean_graph_readout(refined, graphs)  # (b*l, d)
        return pooled.reshape(b, l, d), refined


class GPSFormer(nn.Module):
    """Full encoder: road representation + N GPSFormerBlocks."""

    def __init__(self, network: RoadNetwork, config: RNTrajRecConfig,
                 grid: Optional[Grid] = None) -> None:
        super().__init__()
        self.network = network
        self.config = config
        self.grid = grid or network.make_grid(config.grid_cell_size)
        d = config.hidden_dim

        self.road_encoder = build_road_encoder(network, self.grid, config)
        self.subgraph_generator = SubGraphGenerator(network, config)
        self.input_proj = nn.Linear(d + 3 + 4, d)
        self.positional = nn.PositionalEncoding(d, max_len=1024, dropout=config.dropout)
        self.blocks = nn.ModuleList(
            GPSFormerBlock(config, seed=i) for i in range(config.num_gpsformer_layers)
        )
        self.context_proj = nn.Linear(d + ENV_CONTEXT_DIM, d)
        # Inference-time memo of X_road (see _road_features).  The
        # generation counter closes the stale-write race: a compute that
        # started before an invalidation must not repopulate the cache.
        self._road_cache: Optional[Tensor] = None
        self._road_cache_generation = 0

    # ------------------------------------------------------------------
    def _input_features(self, batch: Batch, road_features: Tensor,
                        graphs: SubGraphBatch) -> Tuple[Tensor, Tensor]:
        """(H^(0), Z^(0)): projected per-point features and node features."""
        b, l = batch.size, batch.input_length

        node_feats = gather_rows(road_features, graphs.node_segments)
        gps_repr = weighted_graph_readout(node_feats, graphs).reshape(b, l, -1)

        extras = Tensor(point_context_features(batch, self.grid))
        features = nn.concat([gps_repr, extras], axis=-1)
        return self.input_proj(features), node_feats

    def _environment(self, batch: Batch) -> np.ndarray:
        """f_e: 24-dim hour one-hot + holiday flag."""
        context = np.zeros((batch.size, ENV_CONTEXT_DIM))
        context[np.arange(batch.size), batch.hours] = 1.0
        context[:, 24] = batch.holidays.astype(np.float64)
        return context

    # ------------------------------------------------------------------
    def clear_road_cache(self) -> None:
        """Drop the memoized X_road (call after mutating parameters in-place
        while staying in eval mode; train()/load_state_dict clear it too)."""
        self._road_cache = None
        self._road_cache_generation += 1

    def load_state_dict(self, state, strict: bool = True, copy: bool = True) -> None:
        # Note: Module.load_state_dict on a *parent* assigns parameters
        # directly and never calls this override — RNTrajRec.load_state_dict
        # clears the cache for that path; this covers direct encoder loads.
        self.clear_road_cache()
        super().load_state_dict(state, strict=strict, copy=copy)

    def _road_features(self) -> Tensor:
        """X_road — recomputed per forward while training (parameters move
        between steps and gradients must flow), memoized under
        ``eval() + no_grad`` where it is a pure function of frozen weights.
        This turns the road-network encoder into a one-off cost per served
        model instead of a per-request cost."""
        if self.training or is_grad_enabled():
            self._road_cache = None
            with profile.section("encoder.road_features"):
                return self.road_encoder()
        generation = self._road_cache_generation
        cached = self._road_cache  # local read: a concurrent clear() between
        if cached is None:         # check and return must not yield None
            with profile.section("encoder.road_features"):
                cached = self.road_encoder()
            if self._road_cache_generation == generation:
                # Only publish if no invalidation (checkpoint load, train()
                # flip) landed while we computed — else the result is stale.
                self._road_cache = cached
        return cached

    def forward(self, batch: Batch) -> EncoderOutput:
        road_features = self._road_features()

        graphs: Optional[SubGraphBatch] = None
        node_features: Optional[Tensor] = None
        if self.config.use_grl or self.config.use_graph_loss:
            graphs = self.subgraph_generator.batch(batch.input_xy)

        if graphs is not None:
            hidden, node_features = self._input_features(batch, road_features, graphs)
        else:
            # w/o GRL and w/o GCL: still use road-aware point features via a
            # lightweight one-off sub-graph pass (the paper's w/o GRL variant
            # keeps the input embedding, only drops the refinement layers).
            graphs_tmp = self.subgraph_generator.batch(batch.input_xy)
            hidden, _ = self._input_features(batch, road_features, graphs_tmp)

        hidden = self.positional(hidden)
        with profile.section("encoder.blocks"):
            for block in self.blocks:
                hidden, node_features = block(hidden, node_features, graphs)

        pooled = hidden.mean(axis=1)
        context = Tensor(self._environment(batch))
        trajectory = self.context_proj(nn.concat([pooled, context], axis=-1))
        return EncoderOutput(
            point_features=hidden,
            trajectory_feature=trajectory,
            node_features=node_features,
            graphs=graphs,
        )
