"""Multi-task training losses (§V, Eqs. 16-19).

* ``L_id`` — constrained cross entropy over road segments (Eq. 16);
* ``L_rate`` — mean squared error of moving ratios (Eq. 17);
* ``L_enc`` — graph classification with constraint weights over the final
  sub-graph node features (Eq. 18), supervising the encoder directly;
* total: ``L_id + λ1 L_rate + λ2 L_enc`` (Eq. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor, gather_rows, segment_sum
from ..trajectory.dataset import Batch
from .decoder import DecoderOutput
from .subgraph_gen import SubGraphBatch


@dataclass
class LossBreakdown:
    """Total plus components, as plain floats for logging."""

    total: Tensor
    id_loss: float
    rate_loss: float
    graph_loss: float

    def summary(self) -> Dict[str, float]:
        return {
            "total": self.total.item(),
            "L_id": self.id_loss,
            "L_rate": self.rate_loss,
            "L_enc": self.graph_loss,
        }


def segment_id_loss(output: DecoderOutput, batch: Batch) -> Tensor:
    """Eq. 16: NLL of the true segment under the masked softmax."""
    b, l, v = output.segment_log_probs.shape
    flat_log_probs = output.segment_log_probs.reshape(b * l, v)
    targets = batch.target_segments.reshape(-1)
    return F.nll_loss(flat_log_probs, targets)


def rate_loss(output: DecoderOutput, batch: Batch) -> Tensor:
    """Eq. 17: MSE between predicted and true moving ratios."""
    return F.mse_loss(output.rates, batch.target_ratios)


def graph_classification_loss(
    node_features: Tensor,
    graphs: SubGraphBatch,
    projection: Tensor,
    batch: Batch,
) -> Tensor:
    """Eq. 18: weighted softmax over each input point's sub-graph nodes.

    The true class of sub-graph (i, j) is the node whose road segment is
    the ground-truth segment at that observed timestep; points whose true
    segment fell outside the δ-ball contribute nothing (their influence
    weight would be zero anyway).
    """
    scores = (node_features @ projection).reshape(-1)  # (total_nodes,)
    log_weights = np.log(np.maximum(graphs.node_weights, 1e-12))
    masked_scores = scores + Tensor(log_weights)

    # log softmax within each sub-graph.
    num_graphs = graphs.num_graphs
    seg_max = np.full(num_graphs, -np.inf)
    np.maximum.at(seg_max, graphs.graph_ids, masked_scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = masked_scores - Tensor(seg_max[graphs.graph_ids])
    exp = shifted.exp()
    denom = segment_sum(exp.reshape(-1, 1), graphs.graph_ids, num_graphs).reshape(-1)
    log_denom = (denom + 1e-12).log()

    # Ground-truth segment per input point: target at the observed steps.
    b, l_tau = batch.observed_steps.shape
    true_segments = np.take_along_axis(
        batch.target_segments, batch.observed_steps, axis=1
    ).reshape(-1)  # (b * l_τ,)

    target_per_graph = true_segments[graphs.graph_ids]
    hit = graphs.node_segments == target_per_graph
    if not hit.any():
        return Tensor(np.zeros(()))

    node_log_probs = shifted - gather_rows(log_denom.reshape(-1, 1), graphs.graph_ids).reshape(-1)
    picked = node_log_probs * Tensor(hit.astype(np.float64))
    # One hit per graph at most; average over graphs that have one.
    graphs_with_hit = max(int(np.bincount(graphs.graph_ids[hit], minlength=num_graphs).astype(bool).sum()), 1)
    return -picked.sum() * (1.0 / graphs_with_hit)


def total_loss(
    output: DecoderOutput,
    batch: Batch,
    node_features: Optional[Tensor],
    graphs: Optional[SubGraphBatch],
    graph_projection: Optional[Tensor],
    lambda_rate: float,
    lambda_graph: float,
    use_graph_loss: bool,
) -> LossBreakdown:
    """Eq. 19 with component logging."""
    id_term = segment_id_loss(output, batch)
    rate_term = rate_loss(output, batch)
    total = id_term + lambda_rate * rate_term

    graph_value = 0.0
    if use_graph_loss and node_features is not None and graphs is not None and graph_projection is not None:
        graph_term = graph_classification_loss(node_features, graphs, graph_projection, batch)
        total = total + lambda_graph * graph_term
        graph_value = float(graph_term.item())

    return LossBreakdown(
        total=total,
        id_loss=float(id_term.item()),
        rate_loss=float(rate_term.item()),
        graph_loss=graph_value,
    )
