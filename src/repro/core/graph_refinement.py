"""Graph Refinement Layer (GRL, §IV-D) and GraphNorm (Eqs. 8-9).

GRL is the spatial half of a GPSFormerBlock.  Per sub-layer the output is
``GraphNorm(x + SubLayer(x))`` where SubLayer is

* **GatedFusion** (Eq. 7): adaptively blends each node's features with the
  transformer output of its timestep, ``z ⊙ tr + (1-z) ⊙ Z``;
* **GraphForward**: P stacked GAT layers over the sub-graph edges.

Ablation switches substitute concat+FFN for gated fusion (w/o GF),
LayerNorm for GraphNorm (w/o GN), and an FFN for the GAT (w/o GAT),
matching Table V's variants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.tensor import Tensor, gather_rows, segment_mean
from .config import RNTrajRecConfig
from .subgraph_gen import SubGraphBatch


class GraphNorm(nn.Module):
    """Normalization of Eq. 9: batch statistics computed graph-aware.

    μ_B averages the per-graph mean-pooled features (Eq. 8); σ_B is the
    variance of *node* features around μ_B.  Running estimates are kept for
    inference, mirroring batch norm.
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.gamma = nn.Parameter(np.ones(dim), name="graphnorm.gamma")
        self.beta = nn.Parameter(np.zeros(dim), name="graphnorm.beta")
        self.register_buffer("running_mean", np.zeros(dim))
        self.register_buffer("running_var", np.ones(dim))

    def forward(self, nodes: Tensor, graphs: SubGraphBatch) -> Tensor:
        if self.training:
            pooled = segment_mean(nodes, graphs.graph_ids, graphs.num_graphs)
            mu = pooled.mean(axis=0)  # (d,) — Eq. 9 first line
            centered = nodes - mu
            var = (centered * centered).mean(axis=0)  # over all nodes
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mu.data
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var.data
            normalized = centered / (var + self.eps).sqrt()
        else:
            normalized = (nodes - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normalized * self.gamma + self.beta


class GatedFusion(nn.Module):
    """Eq. 7: z = σ(tr W1 + Z W2 + b); out = z ⊙ tr + (1 - z) ⊙ Z."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.w_tr = nn.Linear(dim, dim, bias=False)
        self.w_z = nn.Linear(dim, dim)

    def forward(self, node_features: Tensor, timestep_features: Tensor,
                graphs: SubGraphBatch) -> Tensor:
        # Broadcast each timestep's transformer output to its nodes.
        tr_per_node = gather_rows(timestep_features, graphs.graph_ids)
        gate = (self.w_tr(tr_per_node) + self.w_z(node_features)).sigmoid()
        return gate * tr_per_node + (1.0 - gate) * node_features


class ConcatFusion(nn.Module):
    """The w/o-GF ablation: concatenation followed by a feed-forward net."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.ffn = nn.Sequential(nn.Linear(2 * dim, dim))

    def forward(self, node_features: Tensor, timestep_features: Tensor,
                graphs: SubGraphBatch) -> Tensor:
        tr_per_node = gather_rows(timestep_features, graphs.graph_ids)
        return self.ffn(nn.concat([tr_per_node, node_features], axis=-1)).relu()


class GraphRefinementLayer(nn.Module):
    """One GRL: gated fusion + graph forward, each with residual + norm."""

    def __init__(self, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.config = config

        if config.use_gated_fusion:
            self.fusion = GatedFusion(d)
        else:
            self.fusion = ConcatFusion(d)

        if config.use_gat_forward:
            self.graph_forward = nn.ModuleList(
                nn.GATLayer(d, d, num_heads=config.num_heads)
                for _ in range(config.num_grl_gat_layers)
            )
        else:
            self.graph_forward = nn.ModuleList([nn.FeedForward(d, 2 * d)])

        if config.use_graph_norm:
            self.norm1 = GraphNorm(d)
            self.norm2 = GraphNorm(d)
        else:
            self.norm1 = nn.LayerNorm(d)
            self.norm2 = nn.LayerNorm(d)

    def _normalize(self, norm: nn.Module, nodes: Tensor, graphs: SubGraphBatch) -> Tensor:
        if isinstance(norm, GraphNorm):
            return norm(nodes, graphs)
        return norm(nodes)

    def forward(self, timestep_features: Tensor, node_features: Tensor,
                graphs: SubGraphBatch) -> Tensor:
        fused = self.fusion(node_features, timestep_features, graphs)
        nodes = self._normalize(self.norm1, node_features + fused, graphs)

        forwarded = nodes
        for layer in self.graph_forward:
            if isinstance(layer, nn.GATLayer):
                forwarded = layer(forwarded, graphs.edge_index)
            else:
                forwarded = layer(forwarded)
        nodes = self._normalize(self.norm2, nodes + forwarded, graphs)
        return nodes


def weighted_graph_readout(nodes: Tensor, graphs: SubGraphBatch) -> Tensor:
    """Eq. 6 pooling: influence-weighted mean of node features per graph."""
    from ..nn.tensor import segment_sum

    weights = Tensor(graphs.node_weights[:, None])
    weighted = nodes * weights
    totals = segment_sum(weighted, graphs.graph_ids, graphs.num_graphs)
    denom = np.zeros(graphs.num_graphs)
    np.add.at(denom, graphs.graph_ids, graphs.node_weights)
    return totals * Tensor(1.0 / np.maximum(denom, 1e-12)[:, None])


def mean_graph_readout(nodes: Tensor, graphs: SubGraphBatch) -> Tensor:
    """Eq. 8 / Eq. 13 GraphReadout: plain mean pooling per sub-graph."""
    return segment_mean(nodes, graphs.graph_ids, graphs.num_graphs)
