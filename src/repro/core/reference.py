"""Pre-vectorization reference implementations of the recovery hot path.

Every function/class here is a faithful copy of the per-step / per-node
Python-loop code that shipped before the hot path was vectorized (PR 2).
They exist for two reasons:

1. **Equivalence guarantees** — ``tests/test_vectorized_equivalence.py``
   asserts on randomized inputs that each vectorized implementation
   produces bit-identical (or allclose, where autograd bookkeeping differs
   by design) outputs to its reference twin.
2. **Perf trajectory** — ``benchmarks/bench_hotpath.py`` times reference
   vs. vectorized per stage and emits ``BENCH_hotpath.json``, so every
   future PR can see whether the hot path regressed.

Nothing in the production path imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geo.distance import gaussian_weight, project_point_to_polyline
from ..nn.tensor import Tensor
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import Batch
from .config import RNTrajRecConfig
from .subgraph_gen import PointSubGraph, SubGraphBatch


# ----------------------------------------------------------------------
# Spatial query: per-candidate Python projection loop
# ----------------------------------------------------------------------


def reference_segments_within(network: RoadNetwork, x: float, y: float,
                              radius: float) -> List[Tuple[int, float]]:
    """The original ``RoadNetwork.segments_within``: one Python
    ``project_point_to_polyline`` call per R-tree candidate (now replaced
    by one vectorized pass over a flat sub-segment table)."""
    point = np.array([x, y])
    hits: List[Tuple[int, float]] = []
    for sid in network.rtree.query_radius(x, y, radius):
        dist, _, _ = project_point_to_polyline(point, network.segments[sid].polyline)
        if dist <= radius:
            hits.append((sid, dist))
    hits.sort(key=lambda pair: pair[1])
    return hits


def reference_constraint_for_fix(network: RoadNetwork, x: float, y: float,
                                 beta: float, max_gps_error: float
                                 ) -> Tuple[np.ndarray, np.ndarray]:
    """The original Eq. 16 sparse-constraint builder (list comprehensions
    over loop-computed hits)."""
    hits = reference_segments_within(network, float(x), float(y), max_gps_error)
    if not hits:
        sid, dist, _ = network.nearest_segment(float(x), float(y))
        hits = [(sid, dist)]
    ids = np.array([sid for sid, _ in hits], dtype=np.int64)
    weights = gaussian_weight(np.array([d for _, d in hits]), beta)
    return ids, np.maximum(weights, 1e-8)


# ----------------------------------------------------------------------
# Decoder: reachability mask, interpolation prior, greedy / beam decoding
# ----------------------------------------------------------------------


class ReferenceReachability:
    """Set-union BFS reachability (the original ``ReachabilityMask``)."""

    def __init__(self, out_neighbors: List[List[int]], hops: int = 2,
                 escape_weight: float = 0.02) -> None:
        self.hops = hops
        self.escape_weight = escape_weight
        self._sets: List[np.ndarray] = []
        for start, _ in enumerate(out_neighbors):
            frontier = {start}
            reached = {start}
            for _ in range(hops):
                frontier = {n for s in frontier for n in out_neighbors[s]} - reached
                reached |= frontier
            self._sets.append(np.fromiter(reached, dtype=np.int64))

    def combine(self, mask_row: Optional[np.ndarray], previous: np.ndarray,
                num_segments: int) -> np.ndarray:
        b = len(previous)
        if mask_row is None:
            mask_row = np.ones((b, num_segments))
        out = mask_row * self.escape_weight
        for i in range(b):
            reachable = self._sets[int(previous[i])]
            out[i, reachable] = mask_row[i, reachable]
        return out


def reference_interpolation_prior(batch: Batch, network, scale: float,
                                  floor: float) -> np.ndarray:
    """Per-(sample, step) loop version of ``decoder.interpolation_prior``."""
    b, l_rho = batch.target_segments.shape
    num_segments = network.num_segments
    prior = np.full((b, l_rho, num_segments), floor)
    radius = 3.0 * scale
    for i, sample in enumerate(batch.samples):
        low = sample.raw_low
        xs = np.interp(batch.target_times[i], low.times, low.xy[:, 0])
        ys = np.interp(batch.target_times[i], low.times, low.xy[:, 1])
        prev_xy = None
        for j in range(l_rho):
            xy = (float(xs[j]), float(ys[j]))
            if xy == prev_xy:
                prior[i, j] = prior[i, j - 1]
                continue
            hits = reference_segments_within(network, xy[0], xy[1], radius)
            for sid, dist in hits:
                prior[i, j, sid] = max(np.exp(-(dist / scale) ** 2), floor)
            prev_xy = xy
    return prior


def reference_decode_greedy(
    decoder,
    encoder_outputs: Tensor,
    initial_state: Tensor,
    target_length: int,
    constraint: Optional[np.ndarray],
    reachability=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The original greedy loop: full autograd graph, loop-based masking."""
    b = encoder_outputs.shape[0]
    state = initial_state
    prev_embed = decoder.start_embedding.reshape(1, -1) * Tensor(np.ones((b, 1)))
    prev_rate = Tensor(np.zeros((b, 1)))

    segments = np.zeros((b, target_length), dtype=np.int64)
    rates = np.zeros((b, target_length))
    for j in range(target_length):
        mask_row = constraint[:, j, :].copy() if constraint is not None else None
        if reachability is not None and j > 0:
            mask_row = reachability.combine(mask_row, segments[:, j - 1],
                                            decoder.num_segments)
        log_probs, state, _ = decoder._step(prev_embed, prev_rate, state,
                                            encoder_outputs, mask_row)
        predicted = np.argmax(log_probs.data, axis=-1)
        segments[:, j] = predicted
        pred_embed = decoder.segment_embedding(predicted)
        rate = decoder._rate(pred_embed, state)
        rates[:, j] = np.clip(rate.data.reshape(b), 0.0, 1.0 - 1e-9)
        prev_embed = pred_embed
        prev_rate = Tensor(rates[:, j][:, None])
    return segments, rates


def reference_decode_beam(
    decoder,
    encoder_outputs: Tensor,
    initial_state: Tensor,
    target_length: int,
    constraint: Optional[np.ndarray],
    beam_width: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-beam Python-candidate beam search (the original implementation)."""
    batch_size = encoder_outputs.shape[0]
    segments = np.zeros((batch_size, target_length), dtype=np.int64)
    rates = np.zeros((batch_size, target_length))

    for i in range(batch_size):
        enc_i = encoder_outputs[i : i + 1]
        beams = [(
            0.0,
            [],
            initial_state[i : i + 1],
            decoder.start_embedding.reshape(1, -1),
            Tensor(np.zeros((1, 1))),
        )]
        for j in range(target_length):
            mask_row = constraint[i : i + 1, j, :] if constraint is not None else None
            candidates = []
            for score, history, state, prev_embed, prev_rate in beams:
                log_probs, new_state, _ = decoder._step(
                    prev_embed, prev_rate, state, enc_i, mask_row
                )
                flat = log_probs.data.reshape(-1)
                top = np.argpartition(-flat, min(beam_width, len(flat) - 1))[:beam_width]
                for sid in top:
                    candidates.append((score + float(flat[sid]), history + [int(sid)],
                                       new_state, int(sid)))
            candidates.sort(key=lambda c: -c[0])
            beams = []
            for score, history, state, sid in candidates[:beam_width]:
                embed = decoder.segment_embedding(np.array([sid]))
                rate = decoder._rate(embed, state)
                beams.append((score, history, state, embed,
                              Tensor(np.clip(rate.data, 0.0, 1.0 - 1e-9))))
        best = max(beams, key=lambda b: b[0])
        segments[i] = best[1]
        state = initial_state[i : i + 1]
        prev_embed = decoder.start_embedding.reshape(1, -1)
        prev_rate = Tensor(np.zeros((1, 1)))
        for j in range(target_length):
            _, state, _ = decoder._step(
                prev_embed, prev_rate, state, enc_i,
                constraint[i : i + 1, j, :] if constraint is not None else None,
            )
            prev_embed = decoder.segment_embedding(np.array([segments[i, j]]))
            rate = decoder._rate(prev_embed, state)
            rates[i, j] = float(np.clip(rate.data.reshape(-1)[0], 0.0, 1.0 - 1e-9))
            prev_rate = Tensor(np.full((1, 1), rates[i, j]))
    return segments, rates


# ----------------------------------------------------------------------
# Sub-graph generation (per-node dict/set unions, per-point batch loop)
# ----------------------------------------------------------------------


class ReferenceSubGraphGenerator:
    """The original per-point / per-node sub-graph builder."""

    def __init__(self, network: RoadNetwork, config: RNTrajRecConfig) -> None:
        self.network = network
        self.config = config
        self._cache: Dict[Tuple[int, int], PointSubGraph] = {}

    def point_subgraph(self, x: float, y: float) -> PointSubGraph:
        key = (int(round(x)), int(round(y)))  # 1 m quantization
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        cfg = self.config
        hits = reference_segments_within(self.network, x, y, cfg.receptive_delta)
        if not hits:
            sid, dist, _ = self.network.nearest_segment(x, y)
            hits = [(sid, dist)]
        hits = hits[: cfg.max_subgraph_nodes]

        segments = np.asarray([sid for sid, _ in hits], dtype=np.int64)
        distances = np.asarray([d for _, d in hits], dtype=np.float64)
        weights = np.maximum(gaussian_weight(distances, cfg.influence_gamma), 1e-8)

        local = {int(sid): i for i, sid in enumerate(segments)}
        edge_src: List[int] = []
        edge_dst: List[int] = []
        for sid, i in local.items():
            for neighbor in self.network.out_neighbors[sid]:
                j = local.get(int(neighbor))
                if j is not None:
                    edge_src.append(i)
                    edge_dst.append(j)
        for i in range(len(segments)):
            edge_src.append(i)
            edge_dst.append(i)

        result = PointSubGraph(
            segments=segments,
            edges=np.asarray([edge_src, edge_dst], dtype=np.int64),
            weights=weights,
        )
        self._cache[key] = result
        return result

    def batch(self, xy: np.ndarray) -> SubGraphBatch:
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 3 or xy.shape[2] != 2:
            raise ValueError(f"expected (batch, length, 2) points, got {xy.shape}")
        b, l = xy.shape[0], xy.shape[1]

        node_segments: List[np.ndarray] = []
        node_weights: List[np.ndarray] = []
        graph_ids: List[np.ndarray] = []
        edge_blocks: List[np.ndarray] = []
        offset = 0
        for gid, (px, py) in enumerate(xy.reshape(-1, 2)):
            sub = self.point_subgraph(float(px), float(py))
            v = len(sub.segments)
            node_segments.append(sub.segments)
            node_weights.append(sub.weights)
            graph_ids.append(np.full(v, gid, dtype=np.int64))
            edge_blocks.append(sub.edges + offset)
            offset += v

        return SubGraphBatch(
            node_segments=np.concatenate(node_segments),
            node_weights=np.concatenate(node_weights),
            graph_ids=np.concatenate(graph_ids),
            edge_index=np.concatenate(edge_blocks, axis=1),
            batch_size=b,
            length=l,
        )


# ----------------------------------------------------------------------
# GNN scatter kernel and constraint-mask materialization
# ----------------------------------------------------------------------


def reference_scatter_sum(values: np.ndarray, segment_ids: np.ndarray,
                          num_segments: int) -> np.ndarray:
    """``np.add.at`` scatter-add (original ``segment_sum`` forward kernel)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def reference_constraint_matrix(sample, num_segments: int) -> np.ndarray:
    """Row-buffer loop version of ``RecoverySample.constraint_matrix``."""
    mask = np.ones((sample.target_length, num_segments), dtype=np.float64)
    for step, entry in enumerate(sample.constraints):
        if entry is None:
            continue
        ids, weights = entry
        row = np.zeros(num_segments, dtype=np.float64)
        row[ids] = weights
        mask[step] = row
    return mask


def reference_constraint_tensor(batch: Batch, num_segments: int) -> np.ndarray:
    """Per-sample stack version of ``Batch.constraint_tensor``."""
    return np.stack([reference_constraint_matrix(s, num_segments)
                     for s in batch.samples])


# ----------------------------------------------------------------------
# Pre-continuous-batching scheduler path (run-to-completion draining)
# ----------------------------------------------------------------------


def reference_run_to_completion(model, samples) -> List[Tuple[np.ndarray, np.ndarray]]:
    """The serving decode path as it existed before the continuous engine:
    group concurrent samples by input length (the micro-batcher's group
    key), pad each group's target grids to a common length, run one
    ``recover_padded`` call per group to completion, and only then start
    the next group.  Returns per-sample (segments, rates) in submission
    order — the twin the engine's interleaved decode is pinned against in
    ``tests/test_vectorized_equivalence.py``.
    """
    from ..trajectory.dataset import make_padded_batch

    groups: Dict[int, List[int]] = {}
    for index, sample in enumerate(samples):
        groups.setdefault(sample.input_length, []).append(index)
    results: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(samples)
    for indices in groups.values():
        batch, lengths = make_padded_batch([samples[i] for i in indices])
        trajectories = model.recover_padded(batch, lengths)
        for i, trajectory in zip(indices, trajectories):
            results[i] = (trajectory.segments, trajectory.ratios)
    return [result for result in results if result is not None]
