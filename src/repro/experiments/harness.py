"""Experiment harness: train-and-evaluate with a JSON result cache.

Every benchmark (one per paper table/figure) funnels through
:func:`run_experiment`, which trains the named method on the named dataset
and returns Table-III style metrics plus SR%k, inference timing and
parameter counts.  Results are cached on disk keyed by the full
experiment fingerprint, so figures that reuse Table III's models (Fig. 4
robustness, Fig. 6 efficiency) do not retrain, and re-running a benchmark
is instant.

Budget knobs come from the environment:

* ``REPRO_BENCH_TRAJECTORIES`` — trajectories per dataset (default 500);
* ``REPRO_BENCH_EPOCHS`` — training epochs (default 25);
* ``REPRO_BENCH_HIDDEN`` — hidden size (default 32);
* ``REPRO_BENCH_WORKERS`` — gradient workers per training run (default 0
  = serial; >1 uses :class:`repro.train.ParallelTrainer`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BASELINE_NAMES, build_baseline
from ..core.config import RNTrajRecConfig
from ..core.model import RNTrajRec
from ..datasets.registry import LoadedDataset, load_dataset
from ..train import TrainConfig, make_trainer
from ..eval.evaluate import evaluate_model, evaluate_sr_at_k
from ..roadnet.shortest_path import ShortestPathEngine

METHOD_NAMES = BASELINE_NAMES + ("rntrajrec",)

DEFAULT_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))

SR_THRESHOLDS = (0.4, 0.5, 0.6, 0.7, 0.8)


def bench_budget() -> Dict[str, int]:
    """Benchmark budget from the environment (see module docstring)."""
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_TRAJECTORIES", 320)),
        "epochs": int(os.environ.get("REPRO_BENCH_EPOCHS", 25)),
        "hidden": int(os.environ.get("REPRO_BENCH_HIDDEN", 32)),
    }


def bench_environment(**extra) -> Dict[str, object]:
    """The self-describing header stamped into every ``BENCH_*.json``.

    Perf artifacts travel between runner shapes (a 1-core dev box, 2-4
    vCPU CI runners, a wide local machine), and numbers like a QPS
    scaling ratio are uninterpretable without knowing the shape that
    produced them — the process-backend gate literally changes with
    ``cpu_count``.  Each artifact therefore records its environment, plus
    benchmark-specific fields via ``extra`` (e.g. ``backend=\"process\"``).
    """
    import platform

    env: Dict[str, object] = {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "backend": "inproc",
    }
    env.update(extra)
    return env


def small_model_config(hidden: int = 32, **overrides) -> RNTrajRecConfig:
    """The repo's standard small-CPU model configuration, shared by the
    harness, serving CLI, examples and benchmarks."""
    params = dict(hidden_dim=hidden, num_heads=4, dropout=0.0,
                  receptive_delta=300.0, max_subgraph_nodes=32)
    params.update(overrides)
    return RNTrajRecConfig(**params)


def quick_train_config(epochs: int, **overrides) -> TrainConfig:
    """The matching standard training recipe."""
    params = dict(epochs=epochs, batch_size=16, learning_rate=5e-3,
                  clip_norm=10.0, teacher_forcing_ratio=0.2, validate=False)
    params.update(overrides)
    return TrainConfig(**params)


@dataclass
class ExperimentResult:
    """One (dataset, method) cell of a results table."""

    dataset: str
    method: str
    metrics: Dict[str, float]
    sr_at_k: Dict[str, float]
    inference_ms_per_trajectory: float
    num_parameters: int
    train_seconds: float
    config: Dict

    def row(self) -> Dict[str, float]:
        return dict(self.metrics)


def _fingerprint(payload: Dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def load_cached(cache_dir: Path, key: str) -> Optional[ExperimentResult]:
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None
    with open(path) as handle:
        raw = json.load(handle)
    return ExperimentResult(**raw)


def store_cached(cache_dir: Path, key: str, result: ExperimentResult) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    with open(_cache_path(cache_dir, key), "w") as handle:
        json.dump(asdict(result), handle, indent=1)


_DATASET_CACHE: Dict[Tuple, LoadedDataset] = {}


def get_dataset(name: str, trajectories: int, keep_every: Optional[int] = None) -> LoadedDataset:
    key = (name, trajectories, keep_every)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, num_trajectories=trajectories, keep_every=keep_every)
    return _DATASET_CACHE[key]


_ENGINE_CACHE: Dict[int, ShortestPathEngine] = {}


def get_engine(data: LoadedDataset) -> ShortestPathEngine:
    key = id(data.network)
    if key not in _ENGINE_CACHE:
        _ENGINE_CACHE[key] = ShortestPathEngine(data.network)
    return _ENGINE_CACHE[key]


def build_method(name: str, data: LoadedDataset, model_config: RNTrajRecConfig):
    """Instantiate any of the nine methods on a dataset's network."""
    if name == "rntrajrec":
        return RNTrajRec(data.network, model_config)
    return build_baseline(name, data.network, model_config)


def run_experiment(
    dataset: str,
    method: str,
    keep_every: Optional[int] = None,
    model_config: Optional[RNTrajRecConfig] = None,
    train_config: Optional[TrainConfig] = None,
    trajectories: Optional[int] = None,
    variant_tag: str = "",
    cache_dir: Path = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
) -> ExperimentResult:
    """Train ``method`` on ``dataset`` and evaluate on its test split."""
    budget = bench_budget()
    trajectories = trajectories or budget["trajectories"]
    model_config = model_config or small_model_config(budget["hidden"])
    train_config = train_config or quick_train_config(budget["epochs"])

    # Parallel-trained results are not bit-identical to serial ones (see
    # repro/train/parallel.py), so the worker count is part of the cache
    # identity: a cell trained one way never masquerades as the other.
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", 0))
    key = _fingerprint(
        {
            "dataset": dataset,
            "method": method,
            "keep_every": keep_every,
            "trajectories": trajectories,
            "variant": variant_tag,
            "model": asdict(model_config) if hasattr(model_config, "__dataclass_fields__") else vars(model_config),
            "train": vars(train_config),
            "workers": workers,
        }
    )
    if use_cache:
        cached = load_cached(cache_dir, key)
        if cached is not None:
            return cached

    data = get_dataset(dataset, trajectories, keep_every)
    engine = get_engine(data)
    model = build_method(method, data, model_config)

    train_seconds = 0.0
    if hasattr(model, "parameters"):  # learned methods
        start = time.perf_counter()
        make_trainer(model, train_config, num_workers=workers).fit(data.train, data.val)
        train_seconds = time.perf_counter() - start

    report = evaluate_model(model, data.test, engine)
    sr = evaluate_sr_at_k(report, data.network, SR_THRESHOLDS)

    result = ExperimentResult(
        dataset=f"{dataset}" + (f"_x{keep_every}" if keep_every else ""),
        method=method + (f"[{variant_tag}]" if variant_tag else ""),
        metrics={k: round(v, 4) for k, v in report.metrics.as_row().items()},
        sr_at_k={str(k): round(v, 4) for k, v in sr.items()},
        inference_ms_per_trajectory=round(report.inference_seconds_per_trajectory * 1000.0, 3),
        num_parameters=int(model.num_parameters()) if hasattr(model, "num_parameters") else 0,
        train_seconds=round(train_seconds, 4),
        config={"trajectories": trajectories, "keep_every": keep_every,
                "epochs": train_config.epochs, "hidden": model_config.hidden_dim},
    )
    store_cached(cache_dir, key, result)
    return result


def format_table(results: Sequence[ExperimentResult], title: str,
                 columns: Sequence[str] = ("Recall", "Precision", "F1 Score", "Accuracy", "MAE", "RMSE")) -> str:
    """Render results in the paper's table layout."""
    lines = [title, "=" * len(title)]
    header = f"{'Method':<22}" + "".join(f"{c:>12}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = f"{result.method:<22}"
        for column in columns:
            value = result.metrics.get(column, float("nan"))
            row += f"{value:>12.4f}" if column not in ("MAE", "RMSE") else f"{value:>12.2f}"
        lines.append(row)
    return "\n".join(lines)
