"""Experiment harness used by the per-table/figure benchmarks."""

from .harness import (
    METHOD_NAMES,
    SR_THRESHOLDS,
    ExperimentResult,
    bench_budget,
    bench_environment,
    build_method,
    format_table,
    get_dataset,
    get_engine,
    quick_train_config,
    run_experiment,
    small_model_config,
)

__all__ = [
    "METHOD_NAMES",
    "SR_THRESHOLDS",
    "ExperimentResult",
    "bench_budget",
    "bench_environment",
    "build_method",
    "format_table",
    "get_dataset",
    "get_engine",
    "quick_train_config",
    "run_experiment",
    "small_model_config",
]
