"""Render EXPERIMENTS.md from the benchmark result cache.

    python scripts/render_experiments.py > EXPERIMENTS.md

Reads every cached ExperimentResult under benchmarks/_cache and lays the
measured numbers alongside the paper's published numbers for each table
and figure, so the document always reflects the latest benchmark run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

CACHE = Path(__file__).resolve().parent.parent / "benchmarks" / "_cache"

# Paper-published reference numbers (Table III/IV excerpts; F1 / Accuracy).
PAPER_TABLE3 = {
    ("chengdu_x8", "linear_hmm"): (0.6351, 0.4916),
    ("chengdu_x8", "dhtr_hmm"): (0.6714, 0.5501),
    ("chengdu_x8", "t2vec"): (0.7441, 0.5601),
    ("chengdu_x8", "transformer"): (0.7742, 0.5902),
    ("chengdu_x8", "mtrajrec"): (0.7938, 0.6081),
    ("chengdu_x8", "t3s"): (0.7913, 0.6092),
    ("chengdu_x8", "gts"): (0.7917, 0.6105),
    ("chengdu_x8", "neutraj"): (0.7961, 0.6152),
    ("chengdu_x8", "rntrajrec"): (0.8272, 0.6609),
    ("chengdu_x16", "linear_hmm"): (0.4564, 0.2858),
    ("chengdu_x16", "dhtr_hmm"): (0.5821, 0.4130),
    ("chengdu_x16", "t2vec"): (0.7013, 0.4627),
    ("chengdu_x16", "transformer"): (0.6537, 0.4258),
    ("chengdu_x16", "mtrajrec"): (0.7202, 0.4918),
    ("chengdu_x16", "t3s"): (0.7144, 0.4897),
    ("chengdu_x16", "gts"): (0.7131, 0.4825),
    ("chengdu_x16", "neutraj"): (0.7213, 0.4942),
    ("chengdu_x16", "rntrajrec"): (0.7632, 0.5413),
    ("porto_x8", "linear_hmm"): (0.5629, 0.3624),
    ("porto_x8", "dhtr_hmm"): (0.6118, 0.4250),
    ("porto_x8", "t2vec"): (0.6977, 0.4738),
    ("porto_x8", "transformer"): (0.6816, 0.4590),
    ("porto_x8", "mtrajrec"): (0.6905, 0.4656),
    ("porto_x8", "t3s"): (0.6816, 0.4551),
    ("porto_x8", "gts"): (0.6967, 0.4761),
    ("porto_x8", "neutraj"): (0.6984, 0.4808),
    ("porto_x8", "rntrajrec"): (0.7293, 0.5230),
    ("shanghai_l_x16", "linear_hmm"): (0.5801, 0.3825),
    ("shanghai_l_x16", "dhtr_hmm"): (0.5696, 0.3974),
    ("shanghai_l_x16", "t2vec"): (0.6831, 0.4544),
    ("shanghai_l_x16", "transformer"): (0.6306, 0.4160),
    ("shanghai_l_x16", "mtrajrec"): (0.6603, 0.4328),
    ("shanghai_l_x16", "t3s"): (0.6721, 0.4510),
    ("shanghai_l_x16", "gts"): (0.6987, 0.4714),
    ("shanghai_l_x16", "neutraj"): (0.6787, 0.4542),
    ("shanghai_l_x16", "rntrajrec"): (0.7332, 0.5145),
}

PAPER_TABLE4 = {
    ("shanghai_x8", "linear_hmm"): (0.7329, 0.5730),
    ("shanghai_x8", "dhtr_hmm"): (0.7123, 0.5876),
    ("shanghai_x8", "t2vec"): (0.6965, 0.5295),
    ("shanghai_x8", "transformer"): (0.7404, 0.5786),
    ("shanghai_x8", "mtrajrec"): (0.7581, 0.5924),
    ("shanghai_x8", "t3s"): (0.7695, 0.6009),
    ("shanghai_x8", "gts"): (0.7766, 0.6172),
    ("shanghai_x8", "neutraj"): (0.7726, 0.6058),
    ("shanghai_x8", "rntrajrec"): (0.8218, 0.6674),
    ("chengdu_few_x8", "linear_hmm"): (0.6351, 0.4916),
    ("chengdu_few_x8", "dhtr_hmm"): (0.6243, 0.4940),
    ("chengdu_few_x8", "t2vec"): (0.7055, 0.5069),
    ("chengdu_few_x8", "transformer"): (0.6977, 0.5051),
    ("chengdu_few_x8", "mtrajrec"): (0.7483, 0.5418),
    ("chengdu_few_x8", "t3s"): (0.7405, 0.5374),
    ("chengdu_few_x8", "gts"): (0.7396, 0.5312),
    ("chengdu_few_x8", "neutraj"): (0.7378, 0.5403),
    ("chengdu_few_x8", "rntrajrec"): (0.7689, 0.5774),
}

PAPER_TABLE5 = {
    "rntrajrec": (0.8272, 0.6609),
    "rntrajrec[w/o GRL]": (0.8177, 0.6459),
    "rntrajrec[w/o GF]": (0.8191, 0.6439),
    "rntrajrec[w/o GAT]": (0.8229, 0.6292),
    "rntrajrec[w/o GN]": (0.8200, 0.6306),
    "rntrajrec[w/o GCL]": (0.8209, 0.6472),
}

METHOD_ORDER = ["linear_hmm", "dhtr_hmm", "t2vec", "transformer", "mtrajrec",
                "t3s", "gts", "neutraj", "rntrajrec"]


def load_results():
    results = []
    for path in sorted(CACHE.glob("*.json")):
        with open(path) as handle:
            row = json.load(handle)
        # The cache also holds standalone artifacts (e.g. BENCH_serving.json)
        # that are not (dataset, method) experiment rows.
        if "method" in row and "dataset" in row:
            results.append(row)
    return results


def pick(results, dataset, method):
    candidates = [r for r in results if r["dataset"] == dataset and r["method"] == method]
    if not candidates:
        return None
    # Prefer the largest-budget run.
    return max(candidates, key=lambda r: (r["config"].get("trajectories") or 0,
                                          r["config"].get("epochs") or 0))


def table_rows(results, dataset, paper, out):
    out.append(f"| Method | paper F1 | ours F1 | paper ACC | ours ACC | ours MAE (m) |")
    out.append("|---|---|---|---|---|---|")
    for method in METHOD_ORDER:
        row = pick(results, dataset, method)
        p = paper.get((dataset, method), (float("nan"), float("nan")))
        if row is None:
            out.append(f"| {method} | {p[0]:.4f} | — | {p[1]:.4f} | — | — |")
            continue
        m = row["metrics"]
        out.append(
            f"| {method} | {p[0]:.4f} | {m['F1 Score']:.4f} | "
            f"{p[1]:.4f} | {m['Accuracy']:.4f} | {m['MAE']:.1f} |"
        )


def main() -> None:
    results = load_results()
    out = []
    out.append("# EXPERIMENTS — paper vs. measured")
    out.append("")
    out.append("Measured numbers come from `benchmarks/_cache` (regenerate with")
    out.append("`pytest benchmarks/ --benchmark-only -s`, refresh this file with")
    out.append("`python scripts/render_experiments.py > EXPERIMENTS.md`).")
    out.append("")
    out.append("**Scale caveat.** The paper trains d=512 models on ~105k real")
    out.append("trajectories per city for 30 epochs on an RTX 3090; this")
    out.append("reproduction trains d=32 models on a few hundred *synthetic*")
    out.append("trajectories on CPU (the environment has no GPU, no PyTorch and")
    out.append("no access to the proprietary corpora — see DESIGN.md).  Absolute")
    out.append("metrics are therefore far below the paper's; the reproduction")
    out.append("target is the *shape* of each experiment: orderings, degradation")
    out.append("trends and robustness curves.  Where a shape does not fully hold")
    out.append("at this budget, that is stated explicitly below.")
    out.append("")

    for dataset, label in [("chengdu_x8", "Chengdu (ε_τ = ε_ρ × 8)"),
                           ("chengdu_x16", "Chengdu (ε_τ = ε_ρ × 16)"),
                           ("porto_x8", "Porto (ε_τ = ε_ρ × 8)"),
                           ("shanghai_l_x16", "Shanghai-L (ε_τ = ε_ρ × 16)")]:
        out.append(f"## Table III — {label}")
        out.append("")
        table_rows(results, dataset, PAPER_TABLE3, out)
        out.append("")

    for dataset, label in [("shanghai_x8", "Shanghai (ε_τ = ε_ρ × 8)"),
                           ("chengdu_few_x8", "Chengdu-Few (ε_τ = ε_ρ × 8)")]:
        out.append(f"## Table IV — {label}")
        out.append("")
        table_rows(results, dataset, PAPER_TABLE4, out)
        out.append("")

    out.append("## Table V — ablations (Chengdu ×8, half budget)")
    out.append("")
    out.append("| Variant | paper F1 | ours F1 | paper ACC | ours ACC |")
    out.append("|---|---|---|---|---|")
    # All Table-V rows (including the full model) come from the matched
    # half-budget runs so the comparison is apples-to-apples.
    ablation_budgets = [r["config"].get("trajectories")
                        for r in results if "w/o" in r["method"]]
    t5_budget = min(ablation_budgets) if ablation_budgets else None
    for method, p in PAPER_TABLE5.items():
        candidates = [r for r in results
                      if r["dataset"] == "chengdu_x8" and r["method"] == method
                      and (t5_budget is None or r["config"].get("trajectories") == t5_budget)]
        row = (max(candidates, key=lambda r: r["config"].get("epochs") or 0)
               if candidates else pick(results, "chengdu_x8", method))
        if row is None:
            out.append(f"| {method} | {p[0]:.4f} | — | {p[1]:.4f} | — |")
        else:
            m = row["metrics"]
            out.append(f"| {method} | {p[0]:.4f} | {m['F1 Score']:.4f} | "
                       f"{p[1]:.4f} | {m['Accuracy']:.4f} |")
    out.append("")

    out.append("## Fig. 4 — SR%k on elevated roads (Chengdu ×8)")
    out.append("")
    out.append("| Method | SR%0.4 | SR%0.5 | SR%0.6 | SR%0.7 | SR%0.8 |")
    out.append("|---|---|---|---|---|---|")
    for method in METHOD_ORDER:
        row = pick(results, "chengdu_x8", method)
        if row is None:
            continue
        sr = row["sr_at_k"]
        cells = " | ".join(f"{sr[str(float(k))]:.3f}" for k in (0.4, 0.5, 0.6, 0.7, 0.8))
        out.append(f"| {method} | {cells} |")
    out.append("")

    out.append("## Fig. 6 — efficiency (Chengdu ×8)")
    out.append("")
    out.append("| Method | ours ACC | ours ms/traj | ours #params |")
    out.append("|---|---|---|---|")
    fig6_methods = METHOD_ORDER + [
        "rntrajrec[rntrajrec* (N=1)]", "rntrajrec[rntrajrec* (N=2)]",
        "rntrajrec[rntrajrec (N=1)]", "rntrajrec[rntrajrec (N=2)]",
    ]
    for method in fig6_methods:
        row = pick(results, "chengdu_x8", method)
        if row is None:
            continue
        out.append(f"| {method} | {row['metrics']['Accuracy']:.4f} | "
                   f"{row['inference_ms_per_trajectory']:.1f} | {row['num_parameters']:,} |")
    out.append("")

    out.append("## Fig. 7 — parameter analysis (Chengdu ×8, sweep budget)")
    out.append("")
    out.append("| Variant | ours F1 | ours ACC |")
    out.append("|---|---|---|")
    sweeps = ([f"rntrajrec[enc={k}]" for k in ("gridgnn", "gcn", "gin", "gat")]
              + [f"rntrajrec[N={n}]" for n in (1, 2, 3)]
              + [f"rntrajrec[delta={d}]" for d in (100, 300, 600)]
              + [f"rntrajrec[gamma={g}]" for g in (10, 30, 50)])
    for method in sweeps:
        row = pick(results, "chengdu_x8", method)
        if row is None:
            continue
        out.append(f"| {method} | {row['metrics']['F1 Score']:.4f} | "
                   f"{row['metrics']['Accuracy']:.4f} |")
    out.append("")

    out.append("## Findings — which paper shapes reproduce at this budget")
    out.append("")
    out.append("Reproduced:")
    out.append("")
    out.append("* **Headline win (Table III, Chengdu ×8)** — RNTrajRec has the")
    out.append("  best F1 of all nine methods, beating the best baseline by a")
    out.append("  similar relative margin to the paper (+0.047 F1 here vs +0.031")
    out.append("  there), and the best accuracy among learned methods.")
    out.append("* **Table IV, Shanghai ×8** — RNTrajRec best F1 overall and best")
    out.append("  accuracy among end-to-end methods, as in the paper.")
    out.append("* **Table IV, Chengdu-Few** — RNTrajRec still best F1 among the")
    out.append("  end-to-end methods with only ~20% of the data, and its margin")
    out.append("  over MTrajRec shrinks relative to full data — exactly the")
    out.append("  paper's §VI-C observation about transformers being data-hungry.")
    out.append("* **Linear+HMM degradation** — accuracy and MAE degrade sharply")
    out.append("  from ×8 to ×16 sampling (paper §VI-B).")
    out.append("* **DHTR+HMM is the weakest learned method**, as in the paper's")
    out.append("  two-stage-vs-end-to-end comparison.")
    out.append("* **SR%k machinery** (elevated-window extraction, threshold")
    out.append("  curves) is implemented and monotone by construction (Fig. 4);")
    out.append("  note that at this corpus size only a handful of test")
    out.append("  trajectories cross the elevated deck, so the curves are")
    out.append("  coarsely quantized — the Fig. 5 case study probes the")
    out.append("  elevated scenario directly instead.")
    out.append("* **Efficiency (Fig. 6)** — parameter counts and inference-time")
    out.append("  ordering mirror the paper: N=2 > N=1, +GRL > -GRL, and")
    out.append("  RNTrajRec costs more per trajectory than GRU baselines.")
    out.append("")
    out.append("Partially reproduced / not reproduced at this budget:")
    out.append("")
    out.append("* **Learned methods vs Linear+HMM on F1 everywhere** — in the")
    out.append("  paper every end-to-end method beats Linear+HMM; here that")
    out.append("  holds on Chengdu ×8 and Shanghai ×8 (RNTrajRec only), while on")
    out.append("  ×16 settings Linear+HMM keeps the best F1.  The paper sits at")
    out.append("  ~300× our training-data budget; the scaling extension bench")
    out.append("  (`bench_scaling_extension.py`) shows the learned curve rising")
    out.append("  with data while Linear+HMM is flat.")
    out.append("* **Table V ablation ordering** — at half budget with one seed,")
    out.append("  the full model is best on some datasets but individual")
    out.append("  ablations fluctuate within a few F1 points, so the paper's")
    out.append("  strict per-variant ordering (differences of < 1 point even at")
    out.append("  full scale) is inside our noise floor.")
    out.append("* **Fig. 7 sweeps** — directionally consistent (γ insensitivity")
    out.append("  reproduces well) but, like Table V, single-seed noise at sweep")
    out.append("  budgets blurs sub-point differences.")
    out.append("")
    sys.stdout.write("\n".join(out) + "\n")


if __name__ == "__main__":
    main()
