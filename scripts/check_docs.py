"""Validate intra-repo markdown links (run by the CI docs job).

Scans every tracked ``*.md`` file for inline links/images and checks that
relative targets resolve to an existing file or directory.  External
schemes (http/https/mailto) and pure in-page anchors are skipped;
``path#anchor`` links are checked for the path part, and the anchor is
verified against the target's headings when the target is markdown.

    python scripts/check_docs.py [root]

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "__pycache__", "_cache", "node_modules", ".pytest_cache"}


def heading_anchors(markdown: str) -> set:
    """GitHub-style anchor slugs of every heading in a markdown document."""
    anchors = set()
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if not match:
            continue
        slug = match.group(1).strip().lower()
        slug = re.sub(r"[`*_]", "", slug)
        slug = re.sub(r"[^\w\- ]", "", slug)
        anchors.add(slug.replace(" ", "-"))
    return anchors


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_PATTERN.findall(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        if target.startswith("#"):  # in-page anchor
            if target[1:] not in heading_anchors(text):
                problems.append(f"{path.relative_to(root)}: broken anchor {target!r}")
            continue
        raw_path, _, anchor = target.partition("#")
        resolved = (path.parent / raw_path).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: missing target {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            if anchor not in anchors:
                problems.append(
                    f"{path.relative_to(root)}: missing anchor {target!r}")
    return problems


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    problems = []
    count = 0
    for path in markdown_files(root):
        count += 1
        problems.extend(check_file(path, root))
    if problems:
        print(f"checked {count} markdown files — {len(problems)} broken link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"checked {count} markdown files — all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
