"""Validate the documentation against the repo (run by the CI docs job).

Four checks over every tracked ``*.md`` file:

1. **links** — inline links/images must resolve to an existing file or
   directory; ``path#anchor`` anchors are verified against the target's
   headings when the target is markdown (external schemes and pure
   in-page anchors are skipped);
2. **paths** — every ``src/repro/...`` path mentioned in prose or tables
   must exist on disk (catches docs naming moved/renamed modules);
3. **artifacts** — every ``BENCH_*.json`` artifact name mentioned in the
   docs must be produced by some benchmark under ``benchmarks/`` (catches
   tables advertising artifacts nothing writes);
4. **package index** — ``docs/api.md`` must name every package under
   ``src/repro/`` (catches new subsystems that never got documented).

    python scripts/check_docs.py [root]

Exits non-zero listing every problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Repo paths named in prose/tables (``src/repro/serve/``, src/repro/geo/grid.py ...)
SRC_PATH_PATTERN = re.compile(r"src/repro[\w./-]*")
BENCH_ARTIFACT_PATTERN = re.compile(r"BENCH_\w+\.json")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "__pycache__", "_cache", "node_modules", ".pytest_cache"}


def heading_anchors(markdown: str) -> set:
    """GitHub-style anchor slugs of every heading in a markdown document."""
    anchors = set()
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if not match:
            continue
        slug = match.group(1).strip().lower()
        slug = re.sub(r"[`*_]", "", slug)
        slug = re.sub(r"[^\w\- ]", "", slug)
        anchors.add(slug.replace(" ", "-"))
    return anchors


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path, text: str) -> list:
    problems = []
    for target in LINK_PATTERN.findall(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        if target.startswith("#"):  # in-page anchor
            if target[1:] not in heading_anchors(text):
                problems.append(f"{path.relative_to(root)}: broken anchor {target!r}")
            continue
        raw_path, _, anchor = target.partition("#")
        resolved = (path.parent / raw_path).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: missing target {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            if anchor not in anchors:
                problems.append(
                    f"{path.relative_to(root)}: missing anchor {target!r}")
    return problems


def check_source_paths(path: Path, root: Path, text: str) -> list:
    """Every ``src/repro/...`` path a doc names must exist on disk."""
    problems = []
    for token in set(SRC_PATH_PATTERN.findall(text)):
        cleaned = token.rstrip(".")         # sentence-final "src/repro/geo."
        if "*" in cleaned:                  # glob-speak like src/repro/*
            continue
        if not (root / cleaned).exists():
            problems.append(
                f"{path.relative_to(root)}: names missing path {cleaned!r}")
    return problems


def check_bench_artifacts(path: Path, root: Path, text: str,
                          bench_sources: str) -> list:
    """Every ``BENCH_*.json`` a doc advertises must be written by a bench."""
    problems = []
    for artifact in set(BENCH_ARTIFACT_PATTERN.findall(text)):
        if artifact not in bench_sources:
            problems.append(
                f"{path.relative_to(root)}: artifact {artifact!r} is not "
                "produced by any file under benchmarks/")
    return problems


def repo_packages(root: Path) -> list:
    """Package names under ``src/repro/`` (directories with __init__.py)."""
    return sorted(
        entry.name for entry in (root / "src" / "repro").iterdir()
        if entry.is_dir() and (entry / "__init__.py").exists()
    )


def check_package_index(root: Path) -> list:
    """``docs/api.md`` must document every ``src/repro/*`` package."""
    api = root / "docs" / "api.md"
    if not api.exists():
        return ["docs/api.md: missing — the package index must cover every "
                "package under src/repro/"]
    text = api.read_text(encoding="utf-8")
    return [
        f"docs/api.md: package `repro.{name}` (src/repro/{name}/) is not "
        "documented"
        for name in repo_packages(root)
        if f"repro.{name}" not in text
    ]


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    bench_sources = "\n".join(
        bench.read_text(encoding="utf-8")
        for bench in sorted((root / "benchmarks").glob("*.py")))
    problems = []
    count = 0
    for path in markdown_files(root):
        count += 1
        text = path.read_text(encoding="utf-8")
        problems.extend(check_file(path, root, text))
        problems.extend(check_source_paths(path, root, text))
        problems.extend(check_bench_artifacts(path, root, text, bench_sources))
    problems.extend(check_package_index(root))
    if problems:
        print(f"checked {count} markdown files — {len(problems)} problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    packages = ", ".join(repo_packages(root))
    print(f"checked {count} markdown files — links, src/repro paths and "
          f"BENCH artifacts all resolve; docs/api.md covers: {packages}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
