"""Serving CLI for the RNTrajRec recovery service (stdlib + repro only).

Four subcommands:

``train``    train a model on a registry dataset and save a versioned
             serving bundle (checkpoint ``.npz`` + config ``.json`` with a
             ``train`` provenance section)::

                 PYTHONPATH=src python scripts/serve.py train \
                     --dataset chengdu --epochs 5 --out runs/chengdu_model

             Production knobs (see docs/training.md): ``--workers 4``
             shards each batch across gradient workers, ``--schedule
             cosine --warmup-epochs 2`` picks the LR schedule,
             ``--resume runs/chengdu_state`` checkpoints every epoch into
             a resumable train-state archive (and resumes from it when it
             already exists).  ``--register http://host:port --shard
             chengdu`` completes the train→deploy path by hot-deploying
             the fresh bundle into a running ``cluster`` front door.

``oneshot``  start a service from a bundle (training a quick model first if
             no bundle is given), replay test-split traces as concurrent
             requests, and print per-request results plus ``stats()``::

                 PYTHONPATH=src python scripts/serve.py oneshot \
                     --dataset chengdu --bundle runs/chengdu_model --requests 20

``http``     expose the service over a threaded stdlib HTTP server::

                 PYTHONPATH=src python scripts/serve.py http \
                     --dataset chengdu --bundle runs/chengdu_model --port 8008

             With ``--bundle`` the server starts on the light path: only
             the road network and dataset spec are rebuilt (via
             ``get_spec``/``generate_city``) — no trajectory simulation or
             sample building.  Adding ``--artifact-dir DIR`` freezes the
             city into ``DIR/<dataset>`` on first start and mmap-loads the
             frozen bundle (network, grid, reachability, weights, X_road)
             zero-copy on every later start; the startup log says which
             path was taken (``built+saved`` vs ``mmap-loaded``).

             Endpoints: ``POST /recover`` with a JSON body
             ``{"points": [[x, y], ...], "times": [...], "hour": 12,
             "holiday": false}``; ``GET /stats``; ``GET /healthz``.

             Streaming sessions (``repro.stream``, see docs/streaming.md):
             ``POST /session/open`` ``{"hour", "holiday"}`` →
             ``{"session_id"}``; ``POST /session/append``
             ``{"session_id", "points", "times"}`` streams back the
             current best recovery (``revised_from`` flags suffix
             revisions); ``POST /session/finalize`` ``{"session_id"}``
             returns the exact one-shot-equivalent result and closes the
             session; ``GET /session/evictions`` lists recent TTL/LRU
             evictions (session stores are bounded; a full store answers
             ``/session/open`` with 429).

``cluster``  multi-city sharded serving behind one HTTP front door, driven
             by a TOML/JSON shard-map file (see docs/cluster.md) or a
             quick ``--datasets`` list (each city trains a small model at
             startup)::

                 PYTHONPATH=src python scripts/serve.py cluster \
                     --shard-map cluster.toml --warm --port 8018
                 PYTHONPATH=src python scripts/serve.py cluster \
                     --datasets chengdu,porto --epochs 2 --port 8018

             ``--artifact-dir DIR`` gives each shard a frozen-city cache
             (``DIR/<shard>``): first warm builds and saves it, later
             boots mmap-load it so N replicas share one physical copy of
             every immutable structure (see docs/cluster.md).

             Endpoints: ``POST /recover`` (global-frame points; 422 when
             no shard owns the trace, 429 when the owning shard sheds),
             ``GET /stats`` (rolled-up), ``GET /healthz``,
             ``GET /deadletters``, ``POST /swap`` ``{"shard", "model"}``,
             and ``POST /register`` ``{"shard", "model", "bundle"}`` to
             hot-deploy one city's new bundle without touching siblings.

The road network is rebuilt deterministically from the dataset name, so a
bundle trained with ``train`` always matches the network ``oneshot``,
``http`` and ``cluster`` reconstruct.
"""

import argparse
import json
import sys
import time
from dataclasses import replace
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.cluster import (  # noqa: E402
    RecoveryCluster,
    RouteError,
    ShardOverloaded,
    load_shard_map,
    side_by_side,
)
from repro.core import RNTrajRec  # noqa: E402
from repro.datasets import get_spec, load_dataset  # noqa: E402
from repro.experiments import quick_train_config, small_model_config  # noqa: E402
from repro.roadnet import CityArtifacts, generate_city  # noqa: E402
from repro.serve import (  # noqa: E402
    ModelRegistry,
    RecoveryRequest,
    RecoveryService,
    RequestError,
    ServeConfig,
)
from repro.stream import (  # noqa: E402
    SessionOverloaded,
    StreamConfig,
    StreamingRecoveryService,
    UnknownSession,
)
from repro.train import (  # noqa: E402
    Trainer,
    enable_console_logging,
    fit_and_bundle,
    register_bundle,
)


def train_bundle(args) -> str:
    enable_console_logging()  # epoch records from the quiet-by-default trainer
    data = load_dataset(args.dataset, num_trajectories=args.trajectories)
    model = RNTrajRec(data.network, small_model_config(args.hidden))
    train_config = quick_train_config(
        args.epochs, schedule=args.schedule, warmup_epochs=args.warmup_epochs,
        validate=bool(data.val), log_every=args.log_every)
    mode = (f"{args.workers} gradient workers" if args.workers > 1 else "serial")
    print(f"Training {args.dataset} model ({model.num_parameters():,} parameters, "
          f"{args.epochs} epochs, {args.schedule} schedule, {mode}) ...")
    report = fit_and_bundle(
        model, data.train, args.out, val_samples=data.val, config=train_config,
        num_workers=args.workers, checkpoint=args.resume,
        metadata={"dataset": args.dataset})
    print(f"Saved bundle: {report.checkpoint_path} + {report.config_path} "
          f"(version {report.version})")
    if args.resume:
        print(f"Train state checkpointed to {args.resume} (re-run resumes there)")
    if args.register:
        shard = args.shard or args.dataset
        name = args.model_name or f"{args.dataset}-{report.version}"
        bundle = str(Path(args.out).resolve())
        print(f"Registering bundle on {args.register} "
              f"(shard {shard!r}, model {name!r}) ...")
        active = register_bundle(args.register, shard, name, bundle)
        print(f"Cluster now serves: {active}")
    return args.out


def build_service(args, need_samples: bool = True) -> tuple:
    """(service, loaded dataset or None) for the oneshot/http subcommands.

    With a ``--bundle`` and ``need_samples=False`` (the ``http`` server)
    this takes the light path: only the road network and the dataset spec
    are reconstructed — no trajectory simulation, map matching or sample
    building — which cuts server start time to the city-generation cost.
    """
    common = dict(
        scheduler=args.scheduler,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        cache_capacity=args.cache_capacity,
    )
    if args.bundle is not None and not need_samples:
        spec = get_spec(args.dataset)
        serve_config = ServeConfig.for_spec(spec, **common)
        artifact_path = (str(Path(args.artifact_dir) / args.dataset)
                         if getattr(args, "artifact_dir", None) else None)
        if artifact_path and CityArtifacts.exists(artifact_path):
            # Warm start: everything immutable (network CSR, grid,
            # reachability, weights, X_road) comes back as mmap views.
            started = time.perf_counter()
            artifacts = CityArtifacts.load(artifact_path, mmap=True)
            registry = ModelRegistry(artifacts=artifacts)
            if artifacts.has_model():
                registry.register_artifact_model("default", activate=True)
            else:
                registry.register("default", args.bundle, activate=True)
                registry.load("default")
            print(f"artifacts mmap-loaded from {artifact_path} in "
                  f"{time.perf_counter() - started:.2f}s "
                  f"({registry.network.num_segments} segments, zero-copy)")
            return RecoveryService(registry, serve_config), None
        network = generate_city(spec.city)  # deterministic: matches `train`
        print(f"Light startup: network + spec only ({network.num_segments} "
              "segments, no dataset materialization)")
        service = RecoveryService.from_checkpoint(args.bundle, network, serve_config)
        if artifact_path:
            started = time.perf_counter()
            _, _, model = service.registry.active_ref()
            CityArtifacts.build(network, model=model).save(artifact_path)
            print(f"artifacts built+saved to {artifact_path} in "
                  f"{time.perf_counter() - started:.2f}s (next start mmap-loads)")
        return service, None

    data = load_dataset(args.dataset, num_trajectories=args.trajectories)
    serve_config = ServeConfig.for_dataset(data, **common)
    if args.bundle is None:
        print("No --bundle given; training a quick model in-process ...")
        model = RNTrajRec(data.network, small_model_config(args.hidden))
        Trainer(model, quick_train_config(args.epochs)).fit(data.train)
        model.eval()
        return RecoveryService.from_model(model, serve_config), data
    return RecoveryService.from_checkpoint(args.bundle, data.network, serve_config), data


def run_oneshot(args) -> None:
    service, data = build_service(args)
    try:
        pool = data.test + data.val
        if not pool:
            raise SystemExit("dataset has no held-out trajectories to replay")
        samples = [pool[i % len(pool)] for i in range(args.requests)]
        requests = [
            RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                            holiday=s.holiday, request_id=f"req-{i}")
            for i, s in enumerate(samples)
        ]
        print(f"Submitting {len(requests)} concurrent requests ...")
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool_:
            futures = list(pool_.map(service.submit, requests))
        responses = [f.result(timeout=300.0) for f in futures]
        elapsed = time.perf_counter() - start

        for response in responses[:5]:
            path = response.trajectory.travel_path()[:8].tolist()
            print(f"  {response.request_id}: {len(response.trajectory)} points, "
                  f"{'cache' if response.cached else 'model'}, "
                  f"{response.latency_ms:.1f} ms, path {path} ...")
        if len(responses) > 5:
            print(f"  ... and {len(responses) - 5} more")
        print(f"Recovered {len(responses)} trajectories in {elapsed:.2f}s")
        print(json.dumps(service.stats(), indent=1))
    finally:
        service.close()


def _parse_request(payload: dict) -> RecoveryRequest:
    return RecoveryRequest(
        xy=payload["points"], times=payload["times"],
        hour=int(payload.get("hour", 12)),
        holiday=bool(payload.get("holiday", False)),
        request_id=str(payload.get("request_id", "")),
    )


def _response_payload(response) -> dict:
    return {
        "request_id": response.request_id,
        "segments": response.trajectory.segments.tolist(),
        "ratios": [round(float(r), 6) for r in response.trajectory.ratios],
        "times": response.trajectory.times.tolist(),
        "cached": response.cached,
        "latency_ms": round(response.latency_ms, 3),
        "model": response.model,
        "model_tag": response.model_tag,
        "shard": response.shard,
        "session_id": response.session_id,
        "revised_from": response.revised_from,
    }


def _update_payload(update) -> dict:
    """JSON body for one streaming append (``StreamUpdate``)."""
    payload = {
        "session_id": update.session_id,
        "grid_length": update.grid_length,
        "committed_steps": update.committed_steps,
        "revised_from": update.revised_from,
        "decoded_steps": update.decoded_steps,
        "skipped_steps": update.skipped_steps,
        "latency_ms": round(update.latency_ms, 3),
        "model": update.model,
        "model_tag": update.model_tag,
        "shard": update.shard,
    }
    if update.trajectory is not None:
        payload.update({
            "segments": update.trajectory.segments.tolist(),
            "ratios": [round(float(r), 6) for r in update.trajectory.ratios],
            "times": update.trajectory.times.tolist(),
        })
    return payload


class _Handler(BaseHTTPRequestHandler):
    service: RecoveryService = None  # set by run_http
    streaming: StreamingRecoveryService = None  # set by run_http

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *log_args):  # quiet default access log
        pass

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        elif self.path == "/stats":
            stats = self.service.stats()
            stats["sessions"] = self.streaming.store.stats()
            self._send(200, stats)
        elif self.path == "/session/evictions":
            self._send(200, {"evictions": self.streaming.evictions()})
        else:
            self._send(404, {"error": f"unknown path {self.path}"})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        return json.loads(self.rfile.read(length) or b"{}")

    def do_POST(self) -> None:
        try:
            if self.path == "/recover":
                try:
                    request = _parse_request(self._body())
                except (KeyError, TypeError, ValueError) as exc:
                    self._send(400, {"error": str(exc)})
                    return
                response = self.service.recover(request, timeout=300.0)
                self._send(200, _response_payload(response))
            elif self.path == "/session/open":
                payload = self._body()
                session_id = self.streaming.open(
                    session_id=payload.get("session_id"),
                    hour=int(payload.get("hour", 12)),
                    holiday=bool(payload.get("holiday", False)))
                self._send(200, {"session_id": session_id})
            elif self.path == "/session/append":
                payload = self._body()
                update = self.streaming.append(
                    str(payload["session_id"]),
                    payload["points"], payload["times"])
                self._send(200, _update_payload(update))
            elif self.path == "/session/finalize":
                payload = self._body()
                response = self.streaming.finalize(str(payload["session_id"]))
                self._send(200, _response_payload(response))
            else:
                self._send(404, {"error": f"unknown path {self.path}"})
        except SessionOverloaded as exc:  # bounded session store sheds
            self._send(429, {"error": str(exc)})
        except UnknownSession as exc:  # expired/evicted/finalized
            self._send(404, {"error": str(exc)})
        except RequestError as exc:  # ingest rejected the trace/append
            self._send(400, {"error": str(exc)})
        except KeyError as exc:  # missing JSON field
            self._send(400, {"error": f"missing field {exc}"})
        except (TypeError, ValueError) as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # timeouts / model faults are server errors
            self._send(500, {"error": str(exc)})


class _ClusterHandler(BaseHTTPRequestHandler):
    cluster: RecoveryCluster = None  # set by run_cluster

    _send = _Handler._send

    def log_message(self, fmt, *log_args):  # quiet default access log
        pass

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send(200, {"status": "ok", "shards": {
                shard.name: {"materialized": shard.materialized}
                for shard in self.cluster.shards}})
        elif self.path == "/stats":
            self._send(200, self.cluster.stats())
        elif self.path == "/deadletters":
            self._send(200, {"dead_letters": self.cluster.dead_letters()})
        else:
            self._send(404, {"error": f"unknown path {self.path}"})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        return json.loads(self.rfile.read(length) or b"{}")

    def do_POST(self) -> None:
        try:
            if self.path == "/recover":
                try:
                    request = _parse_request(self._body())
                except (KeyError, TypeError, ValueError) as exc:
                    self._send(400, {"error": str(exc)})
                    return
                response = self.cluster.recover(request, timeout=300.0)
                self._send(200, _response_payload(response))
            elif self.path in ("/swap", "/register"):
                payload = self._body()
                needed = ("shard", "model") if self.path == "/swap" else (
                    "shard", "model", "bundle")
                missing = [field for field in needed if field not in payload]
                if missing:
                    self._send(400, {"error": f"missing field(s) {missing}"})
                    return
                if self.path == "/swap":
                    active = self.cluster.swap_model(str(payload["shard"]),
                                                     str(payload["model"]))
                else:
                    active = self.cluster.deploy_model(
                        str(payload["shard"]), str(payload["model"]),
                        str(payload["bundle"]),
                        activate=bool(payload.get("activate", True)))
                self._send(200, {"shard": payload["shard"], **active})
            else:
                self._send(404, {"error": f"unknown path {self.path}"})
        except RouteError as exc:  # no shard owns the trace
            self._send(422, {"error": str(exc), "reason": exc.reason})
        except ShardOverloaded as exc:  # bounded queues shed, HTTP-style 429
            self._send(429, {"error": str(exc), "shard": exc.shard})
        except RequestError as exc:
            self._send(400, {"error": str(exc)})
        except ValueError as exc:  # malformed input the parser let through
            self._send(400, {"error": str(exc)})
        except KeyError as exc:  # unknown shard/model name
            self._send(404, {"error": str(exc)})
        except Exception as exc:
            self._send(500, {"error": str(exc)})


def build_cluster(args) -> RecoveryCluster:
    """A RecoveryCluster from ``--shard-map`` (every shard must name its
    bundle — a missing one fails at warm-up instead of silently training
    a throwaway model) or ``--datasets`` (quick-trains one small model
    per city)."""
    if args.shard_map:
        shard_map = load_shard_map(args.shard_map)
    elif args.datasets:
        shard_map = side_by_side([name.strip() for name in
                                  args.datasets.split(",") if name.strip()],
                                 gap=args.gap)
    else:
        raise SystemExit("cluster needs --shard-map or --datasets")
    # CLI scheduler/cache knobs are defaults; a shard-map [serve] section wins.
    serve = dict(scheduler=args.scheduler,
                 max_batch_size=args.max_batch_size,
                 max_wait_ms=args.max_wait_ms,
                 cache_capacity=args.cache_capacity)
    serve.update(shard_map.serve)
    shard_map = replace(shard_map, serve=serve)
    if getattr(args, "backend", None):
        # The CLI flag overrides every shard: one switch turns a map's
        # thread replicas into forked worker processes (docs/cluster.md,
        # "Execution backends").
        shard_map = replace(shard_map, shards=tuple(
            replace(spec, backend=args.backend) for spec in shard_map))

    def quick_train_factory(spec, network):
        data = load_dataset(spec.dataset, num_trajectories=args.trajectories)
        model = RNTrajRec(network, small_model_config(args.hidden))
        print(f"[{spec.name}] training a quick model "
              f"({model.num_parameters():,} parameters, {args.epochs} epochs)")
        Trainer(model, quick_train_config(args.epochs)).fit(data.train)
        return model.eval()

    # Only the explicit --datasets mode trains in-process; a shard map is
    # a production topology, where a bundle-less shard is a config error.
    factory = quick_train_factory if args.datasets else None
    return RecoveryCluster(shard_map, model_factory=factory,
                           artifact_dir=args.artifact_dir)


def run_cluster(args) -> None:
    cluster = build_cluster(args)
    names = cluster.shard_map.names()
    if args.warm or args.datasets:
        # Bundle-less shards train on first request otherwise — warming up
        # front-loads that cost.  Bundle-backed maps can stay lazy.
        for name in names:
            print(f"warming shard {name!r} ...")
            cluster.warm([name])
            if args.artifact_dir:
                info = cluster.shard(name).artifact_info()
                print(f"[{name}] artifacts {info['source']} in "
                      f"{info['seconds']:.2f}s")
    _ClusterHandler.cluster = cluster
    server = ThreadingHTTPServer((args.host, args.port), _ClusterHandler)
    print(f"Serving {len(names)} shard(s) {names} on "
          f"http://{args.host}:{args.port} (POST /recover /swap /register, "
          "GET /stats /healthz /deadletters); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        cluster.close()
        print(json.dumps(cluster.stats()["cluster"], indent=1))


def run_http(args) -> None:
    service, _ = build_service(args, need_samples=False)
    # The streaming facade shares the registry (hot swaps reach both
    # traffic classes) and the telemetry (one /stats splits them).
    streaming = StreamingRecoveryService(
        service.registry,
        StreamConfig.from_serve(service.config,
                                commit_horizon=args.commit_horizon,
                                capacity=args.session_capacity,
                                ttl_seconds=args.session_ttl),
        telemetry=service.telemetry)
    _Handler.service = service
    _Handler.streaming = streaming
    server = ThreadingHTTPServer((args.host, args.port), _Handler)
    print(f"Serving recovery API on http://{args.host}:{args.port} "
          f"(POST /recover /session/open /session/append /session/finalize, "
          f"GET /stats /healthz /session/evictions); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        streaming.close()
        service.close()
        print(json.dumps(service.stats(), indent=1))


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dataset", default="chengdu")
        p.add_argument("--trajectories", type=int, default=160)
        p.add_argument("--hidden", type=int, default=32)
        p.add_argument("--epochs", type=int, default=5)

    t = sub.add_parser("train", help="train a model and save a serving bundle")
    common(t)
    t.add_argument("--out", required=True, help="bundle prefix (writes .npz + .json)")
    t.add_argument("--workers", type=int, default=0,
                   help="gradient workers (>1 shards each batch; 0/1 serial)")
    t.add_argument("--schedule", default="constant",
                   choices=("constant", "warmup", "step", "cosine"))
    t.add_argument("--warmup-epochs", type=int, default=0)
    t.add_argument("--resume", default=None, metavar="STATE",
                   help="train-state archive: checkpoint every epoch, resume "
                        "from it when it already exists")
    t.add_argument("--log-every", type=int, default=0,
                   help="log a step record every N steps (0 = epochs only)")
    t.add_argument("--register", default=None, metavar="URL",
                   help="running cluster front door to hot-deploy the bundle to")
    t.add_argument("--shard", default=None,
                   help="target shard name for --register (default: dataset)")
    t.add_argument("--model-name", default=None,
                   help="registered model name (default: dataset-<version>)")

    for name, help_text in (("oneshot", "replay held-out traces as requests"),
                            ("http", "serve a stdlib HTTP JSON API")):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("--bundle", default=None, help="bundle prefix from `train`")
        p.add_argument("--scheduler", default="continuous",
                       choices=("continuous", "microbatch"),
                       help="decode scheduler (see docs/serving.md)")
        p.add_argument("--max-batch-size", type=int, default=16)
        p.add_argument("--max-wait-ms", type=float, default=20.0)
        p.add_argument("--cache-capacity", type=int, default=1024)
        if name == "oneshot":
            p.add_argument("--requests", type=int, default=20)
        else:
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=8008)
            p.add_argument("--commit-horizon", type=int, default=8,
                           help="streaming: newest ε_ρ steps kept revisable")
            p.add_argument("--session-capacity", type=int, default=256,
                           help="streaming: max resident sessions")
            p.add_argument("--session-ttl", type=float, default=1800.0,
                           help="streaming: idle session lifetime (seconds)")
            p.add_argument("--artifact-dir", default=None, metavar="DIR",
                           help="city-artifact cache: first start freezes the "
                                "city into DIR/<dataset>, later starts "
                                "mmap-load it zero-copy (needs --bundle)")

    c = sub.add_parser("cluster", help="sharded multi-city HTTP front door")
    c.add_argument("--shard-map", default=None,
                   help="TOML/JSON shard-map file (see docs/cluster.md)")
    c.add_argument("--datasets", default=None,
                   help="comma-separated dataset names laid out side by side "
                        "(quick-trains one model per city)")
    c.add_argument("--gap", type=float, default=500.0,
                   help="corridor between cities in --datasets mode (meters)")
    c.add_argument("--trajectories", type=int, default=160)
    c.add_argument("--hidden", type=int, default=32)
    c.add_argument("--epochs", type=int, default=5)
    c.add_argument("--scheduler", default="continuous",
                   choices=("continuous", "microbatch"),
                   help="decode scheduler (see docs/serving.md)")
    c.add_argument("--max-batch-size", type=int, default=16)
    c.add_argument("--max-wait-ms", type=float, default=20.0)
    c.add_argument("--cache-capacity", type=int, default=1024)
    c.add_argument("--backend", default=None,
                   choices=("inproc", "process"),
                   help="replica execution backend for every shard: thread "
                        "replicas in this process, or forked worker "
                        "processes for multi-core decode throughput "
                        "(overrides the shard map; see docs/cluster.md)")
    c.add_argument("--warm", action="store_true",
                   help="materialize every shard before accepting traffic")
    c.add_argument("--artifact-dir", default=None, metavar="DIR",
                   help="city-artifact cache: each shard freezes its city "
                        "into DIR/<shard> on first warm and mmap-loads it "
                        "on later boots (replicas share the mapping)")
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=8018)

    args = parser.parse_args(argv)
    if args.command == "train":
        train_bundle(args)
    elif args.command == "oneshot":
        run_oneshot(args)
    elif args.command == "cluster":
        run_cluster(args)
    else:
        run_http(args)


if __name__ == "__main__":
    main()
