"""Populate the benchmark result cache for a subset of experiments.

    python scripts/populate_cache.py <job>

Jobs partition the full benchmark workload so several workers can run in
parallel (results land in the shared disk cache keyed by experiment
fingerprint):

  t3a   Table III rows for chengdu x8
  t3b   Table III rows for chengdu x16
  t3c   Table III rows for porto x8
  t3d   Table III rows for shanghai_l x16
  t4    Table IV (shanghai x8, chengdu_few x8)
  t5    Table V ablations (chengdu + porto, half budget)
  f6    Fig. 6 RNTrajRec variants
  f7    Fig. 7 parameter sweeps
"""

import sys

from repro.core import RNTrajRecConfig
from repro.experiments import bench_budget, run_experiment

METHODS = ["linear_hmm", "dhtr_hmm", "t2vec", "transformer", "mtrajrec",
           "t3s", "gts", "neutraj", "rntrajrec"]


def _config(**overrides) -> RNTrajRecConfig:
    budget = bench_budget()
    return RNTrajRecConfig(
        hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
        receptive_delta=300.0, max_subgraph_nodes=32,
    ).variant(**overrides)


def run_rows(dataset: str, ratio: int, trajectories=None) -> None:
    for method in METHODS:
        result = run_experiment(dataset=dataset, method=method, keep_every=ratio,
                                trajectories=trajectories)
        print(f"[{dataset} x{ratio}] {method}: F1={result.metrics['F1 Score']:.4f} "
              f"ACC={result.metrics['Accuracy']:.4f}", flush=True)


def run_table5() -> None:
    budget = bench_budget()
    trajectories = max(120, budget["trajectories"] // 2)
    for dataset in ("chengdu", "porto"):
        run_experiment(dataset=dataset, method="rntrajrec", keep_every=8,
                       trajectories=trajectories, model_config=_config())
        print(f"[t5 {dataset}] full done", flush=True)
        for name in ("grl", "gf", "gat", "gn", "gcl"):
            run_experiment(dataset=dataset, method="rntrajrec", keep_every=8,
                           trajectories=trajectories,
                           model_config=_config().ablation(name),
                           variant_tag=f"w/o {name.upper()}")
            print(f"[t5 {dataset}] w/o {name} done", flush=True)


def run_fig6() -> None:
    budget = bench_budget()
    reduced = max(120, budget["trajectories"] // 2)
    for n_layers, use_grl, label in [
        (1, False, "rntrajrec* (N=1)"), (2, False, "rntrajrec* (N=2)"),
        (1, True, "rntrajrec (N=1)"), (2, True, "rntrajrec (N=2)"),
    ]:
        run_experiment(dataset="chengdu", method="rntrajrec", keep_every=8,
                       trajectories=reduced,
                       model_config=_config(num_gpsformer_layers=n_layers,
                                            use_grl=use_grl, use_graph_loss=use_grl),
                       variant_tag=label)
        print(f"[f6] {label} done", flush=True)


def run_fig7() -> None:
    budget = bench_budget()
    trajectories = max(100, budget["trajectories"] // 3)

    def sweep(tag, **overrides):
        run_experiment(dataset="chengdu", method="rntrajrec", keep_every=8,
                       trajectories=trajectories, model_config=_config(**overrides),
                       variant_tag=tag)
        print(f"[f7] {tag} done", flush=True)

    for kind in ("gridgnn", "gcn", "gin", "gat"):
        sweep(f"enc={kind}", road_encoder=kind)
    for n in (1, 2, 3):
        sweep(f"N={n}", num_gpsformer_layers=n)
    for delta in (100.0, 300.0, 600.0):
        sweep(f"delta={delta:.0f}", receptive_delta=delta)
    for gamma in (10.0, 30.0, 50.0):
        sweep(f"gamma={gamma:.0f}", influence_gamma=gamma)


JOBS = {
    "t3a": lambda: run_rows("chengdu", 8),
    "t3b": lambda: run_rows("chengdu", 16),
    "t3c": lambda: run_rows("porto", 8),
    "t3d": lambda: run_rows("shanghai_l", 16),
    "t4": lambda: (run_rows("shanghai", 8),
                   run_rows("chengdu_few", 8, trajectories=max(60, bench_budget()["trajectories"] // 5))),
    "t5": run_table5,
    "f6": run_fig6,
    "f7": run_fig7,
}


if __name__ == "__main__":
    job = sys.argv[1]
    JOBS[job]()
    print(f"JOB {job} COMPLETE", flush=True)
