"""Inspect GridGNN road-segment embeddings (paper §IV-B / Fig. 7a).

    python examples/road_embedding_analysis.py

Trains RNTrajRec briefly so GridGNN's embeddings absorb trajectory
supervision, then probes two structural properties the paper attributes
to road-network-aware representations:

1. **neighbor coherence** — graph neighbors should be closer in embedding
   space than random segment pairs;
2. **deck separation** — elevated segments should be distinguishable from
   the ground segments directly beneath them even though their geometry
   almost coincides.
"""

import numpy as np

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.train import TrainConfig, Trainer
from repro.datasets import load_dataset


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))


def main() -> None:
    data = load_dataset("chengdu", num_trajectories=120)
    network = data.network

    config = RNTrajRecConfig(hidden_dim=32, num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    model = RNTrajRec(network, config)
    print("Training briefly so embeddings absorb trajectory supervision ...")
    Trainer(model, TrainConfig(epochs=5, batch_size=16, learning_rate=5e-3,
                               teacher_forcing_ratio=0.2, validate=False)).fit(data.train)

    embeddings = model.encoder.road_encoder().data  # (V, d)
    rng = np.random.default_rng(0)

    # 1) Neighbor coherence.
    neighbor_sims, random_sims = [], []
    for sid in range(network.num_segments):
        for nb in network.out_neighbors[sid][:2]:
            neighbor_sims.append(cosine(embeddings[sid], embeddings[nb]))
        other = int(rng.integers(0, network.num_segments))
        if other != sid:
            random_sims.append(cosine(embeddings[sid], embeddings[other]))
    print(f"mean cosine(neighbors)    = {np.mean(neighbor_sims):.3f}")
    print(f"mean cosine(random pairs) = {np.mean(random_sims):.3f}")
    print("=> graph structure is encoded" if np.mean(neighbor_sims) > np.mean(random_sims)
          else "=> warning: neighbors are not closer than random pairs")

    # 2) Deck separation: elevated vs the nearest ground segment.
    elevated = [s for s in network.segments if s.elevated and s.level == 0]
    separations = []
    for seg in elevated[:20]:
        mid = seg.position_at(0.5)
        ground = [
            (sid, dist)
            for sid, dist in network.segments_within(mid[0], mid[1], 60.0)
            if not network.segment(sid).elevated
        ]
        if not ground:
            continue
        twin = ground[0][0]
        separations.append(1.0 - cosine(embeddings[seg.segment_id], embeddings[twin]))
    if separations:
        print(f"mean embedding distance elevated-vs-ground twin = {np.mean(separations):.3f}")
        print("(larger = decks are separable despite near-identical geometry)")

    # Nearest neighbors of one segment in embedding space.
    probe = elevated[0].segment_id if elevated else 0
    sims = embeddings @ embeddings[probe] / (
        np.linalg.norm(embeddings, axis=1) * np.linalg.norm(embeddings[probe]) + 1e-12
    )
    top = np.argsort(-sims)[:6]
    print(f"\nnearest neighbors of segment {probe} "
          f"({'elevated' if network.segment(probe).elevated else 'ground'}):")
    for sid in top:
        seg = network.segment(int(sid))
        print(f"  segment {sid:>4}  cos={sims[sid]:.3f}  level={seg.level} "
              f"elevated={seg.elevated}")


if __name__ == "__main__":
    main()
