"""Fleet recovery pipeline: batch-process a day of low-sample taxi traces.

    python examples/recover_fleet.py

The intro's motivating scenario: a taxi fleet reports GPS fixes every few
minutes to save energy; downstream applications (travel-time estimation,
traffic prediction) need dense map-matched trajectories.  This script

1. simulates a fleet day (low-sample raw traces),
2. trains RNTrajRec once on historical data,
3. recovers every trace to the ε_ρ grid,
4. reports per-trajectory quality and aggregate segment-level flow counts
   (the input a traffic-prediction system would consume).
"""

from collections import Counter

import numpy as np

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.train import TrainConfig, Trainer
from repro.datasets import load_dataset
from repro.eval.metrics import f1_score, path_precision_recall
from repro.trajectory import iterate_batches


def main() -> None:
    data = load_dataset("chengdu", num_trajectories=160)
    network = data.network

    config = RNTrajRecConfig(hidden_dim=32, num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    model = RNTrajRec(network, config)
    print(f"Training on {len(data.train)} historical trajectories ...")
    Trainer(model, TrainConfig(epochs=8, batch_size=16, learning_rate=5e-3,
                               teacher_forcing_ratio=0.2, validate=False)).fit(data.train)
    model.eval()

    fleet = data.test
    print(f"Recovering {len(fleet)} fleet traces "
          f"(input interval {data.spec.simulation.sample_interval * data.spec.dataset.keep_every:.0f}s "
          f"-> output interval {data.spec.simulation.sample_interval:.0f}s) ...")

    flow: Counter = Counter()
    f1s = []
    recovered_points = 0
    input_points = 0
    for batch in iterate_batches(fleet, 16):
        for sample, pred in zip(batch.samples, model.recover_trajectories(batch)):
            recall, precision = path_precision_recall(
                sample.target.travel_path(), pred.travel_path()
            )
            f1s.append(f1_score(recall, precision))
            flow.update(int(s) for s in pred.travel_path())
            recovered_points += len(pred)
            input_points += sample.input_length

    print(f"  densification: {input_points} input fixes -> {recovered_points} recovered points "
          f"({recovered_points / input_points:.1f}x)")
    print(f"  mean travel-path F1 vs ground truth: {np.mean(f1s):.3f}")

    print("\nBusiest road segments (recovered flow counts):")
    for sid, count in flow.most_common(8):
        seg = network.segment(sid)
        kind = "elevated" if seg.elevated else f"level-{seg.level}"
        print(f"  segment {sid:>4} ({kind:<9} {seg.length:5.0f} m): {count} trajectories")


if __name__ == "__main__":
    main()
