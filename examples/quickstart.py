"""Quickstart: train RNTrajRec on a synthetic city and recover trajectories.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py

Steps
-----
1. Load the ``chengdu`` synthetic dataset (road network + trajectory
   corpus with exact ground truth).
2. Train RNTrajRec for a few epochs.
3. Recover the test trajectories and report the paper's metrics.
"""

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.datasets import load_dataset
from repro.eval import evaluate_model
from repro.experiments import get_engine
from repro.train import TrainConfig, Trainer


def main() -> None:
    print("Loading synthetic Chengdu dataset ...")
    data = load_dataset("chengdu", num_trajectories=120)
    print(f"  road segments : {data.network.num_segments}")
    print(f"  train/val/test: {len(data.train)}/{len(data.val)}/{len(data.test)}")

    config = RNTrajRecConfig(hidden_dim=32, num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    model = RNTrajRec(data.network, config)
    print(f"RNTrajRec parameters: {model.num_parameters():,}")

    trainer = Trainer(model, TrainConfig(
        epochs=8, batch_size=16, learning_rate=5e-3,
        teacher_forcing_ratio=0.2, clip_norm=10.0, validate=True,
    ))
    print("Training ...")
    trainer.fit(
        data.train, data.val,
        progress=lambda e: print(
            f"  epoch {e.epoch}: loss={e.loss:.3f} "
            f"val_acc={e.val_accuracy if e.val_accuracy is not None else float('nan'):.3f} "
            f"({e.seconds:.1f}s)"
        ),
    )

    print("Evaluating on the test split ...")
    report = evaluate_model(model, data.test, get_engine(data))
    for name, value in report.metrics.as_row().items():
        unit = " m" if name in ("MAE", "RMSE") else ""
        print(f"  {name:<10}: {value:.4f}{unit}")

    # Inspect one recovery end to end.
    truth = report.truths[0]
    pred = report.predictions[0]
    print("\nFirst test trajectory (truth vs recovered segment ids):")
    print(f"  truth : {truth.segments[:12].tolist()} ...")
    print(f"  model : {pred.segments[:12].tolist()} ...")


if __name__ == "__main__":
    main()
