"""Online serving demo: checkpoint → RecoveryService → concurrent requests.

    PYTHONPATH=src python examples/serve_demo.py

End to end this

1. trains a small RNTrajRec on the synthetic Chengdu dataset and saves a
   serving bundle (checkpoint + config sidecar),
2. starts a :class:`~repro.serve.RecoveryService` from that bundle (the
   model registry rebuilds the model, restores parameters *and* running
   statistics, and pins the shared road network / grid / reachability
   structures),
3. submits 24 concurrent raw-GPS requests through the micro-batching
   scheduler,
4. verifies every recovered trajectory is identical to a direct
   ``RNTrajRec.recover_trajectories`` call on the same input, and
5. prints ``stats()`` — batch occupancy > 1 shows requests were coalesced.
"""

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core import RNTrajRec
from repro.train import Trainer
from repro.datasets import load_dataset
from repro.experiments import quick_train_config, small_model_config
from repro.serve import RecoveryRequest, RecoveryService, ServeConfig, save_model_bundle
from repro.trajectory import make_batch

NUM_REQUESTS = 24


def main() -> None:
    print("Loading synthetic Chengdu dataset ...")
    data = load_dataset("chengdu", num_trajectories=240)

    model = RNTrajRec(data.network, small_model_config(32))
    print(f"Training ({model.num_parameters():,} parameters) ...")
    Trainer(model, quick_train_config(epochs=3)).fit(data.train)
    model.eval()

    with tempfile.TemporaryDirectory() as tmp:
        prefix = str(Path(tmp) / "chengdu_model")
        ckpt, sidecar = save_model_bundle(model, prefix)
        print(f"Saved bundle {ckpt} (+ {Path(sidecar).name})")

        print("Starting RecoveryService from the saved checkpoint ...")
        service = RecoveryService.from_checkpoint(
            prefix, data.network,
            ServeConfig.for_dataset(data, max_batch_size=16, max_wait_ms=50.0),
        )
        _, served_model = service.registry.active()

        pool = data.test + data.val
        samples = [pool[i % len(pool)] for i in range(NUM_REQUESTS)]
        requests = [
            RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                            holiday=s.holiday, request_id=f"req-{i:02d}")
            for i, s in enumerate(samples)
        ]

        print(f"Submitting {NUM_REQUESTS} concurrent raw-GPS requests ...")
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as executor:
            futures = list(executor.map(service.submit, requests))
        responses = [future.result(timeout=300.0) for future in futures]
        elapsed = time.perf_counter() - start
        print(f"  recovered {len(responses)} trajectories in {elapsed:.2f}s")

        print("Verifying service outputs against direct recover_trajectories ...")
        mismatches = 0
        for sample, response in zip(samples, responses):
            direct = served_model.recover_trajectories(make_batch([sample]))[0]
            same = (np.array_equal(direct.segments, response.trajectory.segments)
                    and np.allclose(direct.ratios, response.trajectory.ratios)
                    and np.array_equal(direct.times, response.trajectory.times))
            mismatches += int(not same)
        if mismatches:
            raise SystemExit(f"FAIL: {mismatches}/{NUM_REQUESTS} served trajectories "
                             "differ from direct recovery")
        print(f"  all {NUM_REQUESTS} served trajectories identical to direct recovery")

        # Re-submitting a request demonstrates the quantized-input cache.
        again = service.recover(requests[0])
        print(f"  resubmitted {again.request_id}: cached={again.cached} "
              f"({again.latency_ms:.2f} ms)")

        stats = service.stats()
        print("\nservice.stats():")
        for key, value in stats.items():
            print(f"  {key:<22}: {value}")
        if stats["max_batch_occupancy"] <= 1:
            raise SystemExit("FAIL: no request coalescing happened "
                             "(max_batch_occupancy <= 1)")
        print(f"\nMicro-batching coalesced requests into batches of up to "
              f"{stats['max_batch_occupancy']} "
              f"(mean occupancy {stats['mean_batch_occupancy']}).")
        service.close()


if __name__ == "__main__":
    main()
