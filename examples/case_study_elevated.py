"""Case study (paper Fig. 5): recover one elevated-road trajectory.

    python examples/case_study_elevated.py

Elevated expressways run directly above ground-level trunk roads, so a
recovery method that ignores road-network structure frequently confuses
the two decks — the shortest-path distance between a deck point and the
trunk point "below" it can be kilometres (the only connections are sparse
ramps).  This script trains RNTrajRec and MTrajRec, picks a test
trajectory that uses the elevated deck, and prints a step-by-step deck
comparison plus a GeoJSON-ish dump for external visualization.
"""

import json

import numpy as np

from repro.baselines import build_baseline
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.train import TrainConfig, Trainer
from repro.datasets import load_dataset
from repro.eval.metrics import elevated_window, f1_score, path_precision_recall
from repro.trajectory import make_batch


def deck_label(network, segment_id: int) -> str:
    return "ELEVATED" if network.segment(int(segment_id)).elevated else "ground"


def main() -> None:
    data = load_dataset("chengdu", num_trajectories=160)
    network = data.network

    config = RNTrajRecConfig(hidden_dim=32, num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    train_config = TrainConfig(epochs=8, batch_size=16, learning_rate=5e-3,
                               teacher_forcing_ratio=0.2, clip_norm=10.0,
                               validate=False)

    sample = next(
        (s for s in data.test if elevated_window(s.target, network) is not None),
        data.test[0],
    )
    batch = make_batch([sample])
    truth = sample.target

    predictions = {}
    for name in ("mtrajrec", "rntrajrec"):
        model = (RNTrajRec(network, config) if name == "rntrajrec"
                 else build_baseline(name, network, config))
        print(f"Training {name} ...")
        Trainer(model, train_config).fit(data.train)
        model.eval()
        predictions[name] = model.recover_trajectories(batch)[0]

    print("\nstep  truth(deck)            mtrajrec               rntrajrec")
    for j in range(len(truth)):
        cells = [f"{truth.segments[j]:>5} {deck_label(network, truth.segments[j]):<9}"]
        for name in ("mtrajrec", "rntrajrec"):
            sid = predictions[name].segments[j]
            cells.append(f"{sid:>5} {deck_label(network, sid):<9}")
        print(f"{j:>4}  " + "   ".join(cells))

    window = elevated_window(truth, network)
    print("\nElevated sub-trajectory F1:")
    for name, pred in predictions.items():
        recall, precision = path_precision_recall(
            truth.slice(window).travel_path(), pred.slice(window).travel_path()
        )
        print(f"  {name:<10}: {f1_score(recall, precision):.3f}")

    # Dump recovered geometries for external plotting.
    features = []
    for name, traj in [("truth", truth)] + list(predictions.items()):
        coordinates = [list(map(float, network.position(int(s), float(r))))
                       for s, r in zip(traj.segments, traj.ratios)]
        features.append({
            "type": "Feature",
            "properties": {"name": name},
            "geometry": {"type": "LineString", "coordinates": coordinates},
        })
    path = "case_study_elevated.geojson"
    with open(path, "w") as handle:
        json.dump({"type": "FeatureCollection", "features": features}, handle, indent=1)
    print(f"\nWrote {path} (local-meter coordinates) for visualization.")


if __name__ == "__main__":
    main()
