"""Compare recovery methods on one dataset — a miniature Table III.

    python examples/compare_methods.py [dataset] [trajectories] [epochs]

Trains MTrajRec, GTS+Decoder and RNTrajRec under an identical budget plus
the two-stage Linear+HMM baseline, then prints the paper's metric columns
side by side.  Use a larger trajectory/epoch budget to sharpen the gaps
(the paper trains on ~150k trajectories for 30 epochs).
"""

import sys

from repro.baselines import build_baseline
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.train import TrainConfig, Trainer
from repro.datasets import load_dataset
from repro.eval import evaluate_model
from repro.experiments import get_engine

METHODS = ["linear_hmm", "mtrajrec", "gts", "rntrajrec"]


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "chengdu"
    trajectories = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    epochs = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    print(f"Dataset: {dataset} ({trajectories} trajectories, {epochs} epochs)")
    data = load_dataset(dataset, num_trajectories=trajectories)
    engine = get_engine(data)
    config = RNTrajRecConfig(hidden_dim=32, num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    train_config = TrainConfig(epochs=epochs, batch_size=16, learning_rate=5e-3,
                               teacher_forcing_ratio=0.2, clip_norm=10.0,
                               validate=False)

    rows = {}
    for name in METHODS:
        if name == "rntrajrec":
            model = RNTrajRec(data.network, config)
        else:
            model = build_baseline(name, data.network, config)
        if hasattr(model, "parameters"):
            print(f"Training {name} ({model.num_parameters():,} params) ...")
            Trainer(model, train_config).fit(data.train)
        report = evaluate_model(model, data.test, engine)
        rows[name] = report.metrics.as_row()

    columns = ["Recall", "Precision", "F1 Score", "Accuracy", "MAE", "RMSE"]
    header = f"\n{'Method':<14}" + "".join(f"{c:>12}" for c in columns)
    print(header)
    print("-" * len(header))
    for name, metrics in rows.items():
        line = f"{name:<14}"
        for column in columns:
            value = metrics[column]
            line += f"{value:>12.2f}" if column in ("MAE", "RMSE") else f"{value:>12.4f}"
        print(line)


if __name__ == "__main__":
    main()
