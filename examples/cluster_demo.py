"""Sharded multi-city serving demo: two cities, one front door.

    PYTHONPATH=src python examples/cluster_demo.py

End to end this

1. lays Chengdu and Porto side by side in a global frame
   (:func:`repro.cluster.side_by_side`) and builds a
   :class:`~repro.cluster.RecoveryCluster` over them — shards start
   *cold* (spec-only) and each trains a small model lazily on its first
   routed request;
2. replays held-out traces from both cities concurrently — the router
   sends each to its owning shard, which micro-batches and caches like a
   standalone :class:`~repro.serve.RecoveryService`;
3. shows the cluster-only failure modes: a trace outside every shard and
   a trace straddling the two cities are **dead-lettered**, never served
   by the wrong city's model;
4. drives one shard past its admission bound and shows 429-style load
   shedding (``ShardOverloaded``) instead of unbounded queueing;
5. hot-swaps a new model generation onto Chengdu only and shows the
   response ``model_tag`` flip there while Porto keeps serving its
   original generation — from a still-warm cache;
6. prints the rolled-up ``cluster.stats()`` snapshot.
"""

import time

import numpy as np

from repro.cluster import RecoveryCluster, ShardMap, ShardSpec, side_by_side
from repro.core import RNTrajRec
from repro.train import Trainer
from repro.datasets import load_dataset
from repro.experiments import quick_train_config, small_model_config
from repro.serve import RecoveryRequest

TRAJECTORIES = 120
EPOCHS = 2
REQUESTS_PER_CITY = 8


def quick_train_factory(spec, network):
    data = load_dataset(spec.dataset, num_trajectories=TRAJECTORIES)
    model = RNTrajRec(network, small_model_config(32))
    print(f"  [{spec.name}] lazy warm-up: training "
          f"{model.num_parameters():,} parameters, {EPOCHS} epochs ...")
    Trainer(model, quick_train_config(EPOCHS)).fit(data.train)
    return model.eval()


def city_requests(cluster, name, count):
    """Held-out traces of the shard's dataset, translated into its region
    of the global frame."""
    shard = cluster.shard(name)
    data = load_dataset(shard.spec.dataset, num_trajectories=TRAJECTORIES)
    origin = np.asarray(shard.spec.origin)
    pool = data.test + data.val
    return [
        RecoveryRequest(s.raw_low.xy + origin, s.raw_low.times, hour=s.hour,
                        holiday=s.holiday, request_id=f"{name}-{i}")
        for i, s in enumerate(pool[i % len(pool)] for i in range(count))
    ]


def main() -> None:
    shard_map = side_by_side(["chengdu", "porto"], gap=500.0)
    print(f"Shard map: {shard_map.names()}")
    for spec in shard_map:
        print(f"  {spec.name:<8} origin={spec.origin} bbox={spec.resolved_bbox()}")

    cluster = RecoveryCluster(shard_map, model_factory=quick_train_factory)
    print("Shards start cold:",
          {s.name: s.materialized for s in cluster.shards})

    # ------------------------------------------------------------------
    # Mixed two-city traffic through one front door
    # ------------------------------------------------------------------
    requests = []
    for name in shard_map.names():
        requests.extend(city_requests(cluster, name, REQUESTS_PER_CITY))
    print(f"\nSubmitting {len(requests)} requests across both cities ...")
    start = time.perf_counter()
    results = cluster.recover_many(requests, timeout=600.0)
    elapsed = time.perf_counter() - start
    by_shard = {}
    for result in results:
        assert result.ok, result.error
        by_shard.setdefault(result.shard, []).append(result)
    for name, rs in sorted(by_shard.items()):
        print(f"  {name:<8} {len(rs)} recovered "
              f"(e.g. {rs[0].request_id}: {len(rs[0].response.trajectory)} "
              f"points on tag {rs[0].response.model_tag})")
    print(f"  wall {elapsed:.2f}s — warm-up included (both shards trained "
          "lazily on first routed request)")

    # ------------------------------------------------------------------
    # Routing refusals become dead letters, not wrong-city recoveries
    # ------------------------------------------------------------------
    print("\nUnroutable traffic:")
    chengdu_fix = requests[0].xy[:1]
    porto_fix = requests[REQUESTS_PER_CITY].xy[:1]
    refused = cluster.recover_many([
        RecoveryRequest([[60000.0, 0.0], [60100.0, 0.0]], [0.0, 96.0],
                        request_id="nowhere"),
        RecoveryRequest(np.vstack([chengdu_fix, porto_fix]), [0.0, 96.0],
                        request_id="two-cities"),
    ])
    for result in refused:
        print(f"  {result.request_id}: status={result.status}")
    for letter in cluster.dead_letters():
        print(f"  dead letter: {letter['request_id']!r} [{letter['reason']}] "
              f"{letter['detail']}")

    # ------------------------------------------------------------------
    # Overload: bounded admission sheds instead of queueing
    # ------------------------------------------------------------------
    print("\nOverload (hammering chengdu with admission bound 2):")
    tight_map = ShardMap(shards=tuple(
        ShardSpec(name=s.name, dataset=s.dataset, origin=s.origin,
                  max_inflight=2) for s in shard_map),
        serve={"max_wait_ms": 100.0})
    overloaded = RecoveryCluster(
        tight_map,
        model_factory=lambda spec, network:
            cluster.shard(spec.name).registry.load("default"))
    burst = [RecoveryRequest(r.xy + 0.3 * (1 + i), r.times,
                             request_id=f"burst-{i}")
             for i, r in enumerate([requests[0]] * 12)]
    outcomes = [r.status for r in overloaded.recover_many(burst, timeout=600.0)]
    print(f"  {outcomes.count('ok')} served, {outcomes.count('shed')} shed "
          f"(shed rate {outcomes.count('shed') / len(outcomes):.2f})")
    overloaded.close()

    # ------------------------------------------------------------------
    # Hot swap one city; the sibling's cache stays warm
    # ------------------------------------------------------------------
    print("\nRolling a new model generation onto chengdu only ...")
    replacement = RNTrajRec(cluster.shard("chengdu").network,
                            small_model_config(32)).eval()
    print("  deployed:", cluster.deploy_model("chengdu", "v2", replacement))
    after_chengdu = cluster.recover(requests[0], timeout=600.0)
    after_porto = cluster.recover(requests[REQUESTS_PER_CITY], timeout=600.0)
    print(f"  chengdu now serves tag {after_chengdu.model_tag} "
          f"(cached={after_chengdu.cached} — its cache was invalidated)")
    print(f"  porto   still serves tag {after_porto.model_tag} "
          f"(cached={after_porto.cached} — untouched by the sibling swap)")
    if after_porto.model_tag != "default#1" or not after_porto.cached:
        raise SystemExit("FAIL: sibling shard was disturbed by the hot swap")

    # ------------------------------------------------------------------
    stats = cluster.stats()
    print("\ncluster.stats() rollup:")
    print(f"  cluster: {stats['cluster']}")
    print(f"  router : {stats['router']}")
    for name, shard_stats in stats["shards"].items():
        print(f"  {name:<8} requests={shard_stats['requests']} "
              f"hit_rate={shard_stats['cache_hit_rate']} "
              f"by_model={shard_stats['requests_by_model']}")
    cluster.close()


if __name__ == "__main__":
    main()
