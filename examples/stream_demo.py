"""Streaming recovery demo: open → append fix-by-fix → finalize.

    PYTHONPATH=src python examples/stream_demo.py

End to end this

1. loads the synthetic Chengdu dataset and builds a small RNTrajRec,
2. opens a streaming session per test trace and feeds its raw GPS fixes
   one at a time through :class:`~repro.stream.StreamingRecoveryService`,
   printing each :class:`~repro.stream.StreamUpdate` — watch the grid
   grow, the commit boundary advance behind the horizon, and the
   occasional provisional-suffix revision,
3. calls ``finalize()`` and verifies the result is bit-identical to the
   one-shot ``recover_trajectories`` of the same fixes (the correctness
   anchor of ``repro.stream``), and
4. demonstrates the bounded session store: a capacity-1 service sheds a
   second ``open`` with ``SessionOverloaded`` (HTTP 429 on the wire) and
   logs TTL evictions for abandoned sessions.
"""

import numpy as np

from repro.core import RNTrajRec
from repro.datasets import load_dataset
from repro.experiments import small_model_config
from repro.stream import (
    SessionOverloaded,
    StreamConfig,
    StreamingRecoveryService,
)
from repro.trajectory import make_batch

NUM_SESSIONS = 3


def main() -> None:
    print("Loading synthetic Chengdu dataset ...")
    data = load_dataset("chengdu", num_trajectories=60)
    model = RNTrajRec(data.network, small_model_config(32)).eval()

    config = StreamConfig.for_spec(data.spec, commit_horizon=4)
    service = StreamingRecoveryService.from_model(model, config)
    print(f"Streaming {NUM_SESSIONS} sessions "
          f"(commit horizon {config.commit_horizon} grid steps)\n")

    mismatches = 0
    for index, sample in enumerate(data.test[:NUM_SESSIONS]):
        raw = sample.raw_low
        sid = service.open(hour=sample.hour, holiday=sample.holiday)
        print(f"session {index} ({sid[:8]}…): {len(raw)} fixes")
        for j in range(len(raw)):
            update = service.append(sid, raw.xy[j:j + 1], raw.times[j:j + 1])
            if update.trajectory is None:
                print(f"  fix {j:2d}: buffered (a grid needs two fixes)")
                continue
            revised = (f" revised from step {update.revised_from}"
                       if update.revised_from >= 0 else "")
            print(f"  fix {j:2d}: grid {update.grid_length:3d} steps, "
                  f"{update.committed_steps:3d} committed, decoded "
                  f"{update.decoded_steps:2d} / skipped "
                  f"{update.skipped_steps:3d}, "
                  f"{update.latency_ms:6.2f} ms{revised}")
        response = service.finalize(sid)

        direct = model.recover_trajectories(make_batch([sample]))[0]
        same = (np.array_equal(direct.segments, response.trajectory.segments)
                and np.allclose(direct.ratios, response.trajectory.ratios)
                and np.array_equal(direct.times, response.trajectory.times))
        mismatches += int(not same)
        print(f"  finalize: {len(response.trajectory)} steps in "
              f"{response.latency_ms:.2f} ms — identical to one-shot "
              f"recovery: {same}\n")
    if mismatches:
        raise SystemExit(f"FAIL: {mismatches}/{NUM_SESSIONS} finalized "
                         "sessions differ from one-shot recovery")

    print("Bounded session store: capacity 1, TTL 60 s")
    tiny = StreamingRecoveryService.from_model(
        model, StreamConfig.for_spec(data.spec, capacity=1,
                                     ttl_seconds=60.0,
                                     evict_idle_seconds=3600.0))
    first = tiny.open()
    try:
        tiny.open()
        raise SystemExit("FAIL: second open should have been shed")
    except SessionOverloaded as exc:
        print(f"  second open shed with SessionOverloaded: {exc}")
    tiny.store.remove(first)

    stats = service.stats()
    print("\nservice.stats():")
    for key in ("streaming_requests", "oneshot_requests",
                "revision_rate_by_model", "commit_horizon", "sessions"):
        print(f"  {key:<24}: {stats[key]}")
    service.close()


if __name__ == "__main__":
    main()
