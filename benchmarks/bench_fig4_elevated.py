"""Fig. 4 — elevated-road robustness (SR%k) on Chengdu ×8.

SR%k is the fraction of elevated-road sub-trajectories whose F1 exceeds k.
The harness already computes SR%k for every experiment, so this figure
reuses Table III's cached runs.  Paper finding: RNTrajRec dominates every
baseline across thresholds, and learning-based methods beat HMM two-stage
methods.
"""

import pytest

from repro.experiments import SR_THRESHOLDS, run_experiment

METHODS = [
    "linear_hmm",
    "dhtr_hmm",
    "t2vec",
    "transformer",
    "mtrajrec",
    "t3s",
    "gts",
    "neutraj",
    "rntrajrec",
]


def test_fig4_sr_curves(benchmark):
    results = {
        method: run_experiment(dataset="chengdu", method=method, keep_every=8)
        for method in METHODS
    }

    header = f"{'Method':<22}" + "".join(f"{f'SR%{k}':>10}" for k in SR_THRESHOLDS)
    print("\nFig. 4 — elevated road recovery, Chengdu (ε_τ = ε_ρ × 8)")
    print(header)
    print("-" * len(header))
    for method, result in results.items():
        row = f"{method:<22}"
        for k in SR_THRESHOLDS:
            row += f"{result.sr_at_k[str(float(k))]:>10.3f}"
        print(row)

    # Shape: SR%k is non-increasing in k for every method.
    for method, result in results.items():
        values = [result.sr_at_k[str(float(k))] for k in SR_THRESHOLDS]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), method

    # RNTrajRec should be at or near the top at the lowest threshold.
    rn = results["rntrajrec"].sr_at_k[str(float(SR_THRESHOLDS[0]))]
    tr = results["transformer"].sr_at_k[str(float(SR_THRESHOLDS[0]))]
    assert rn >= tr - 0.05

    benchmark(lambda: {m: r.sr_at_k for m, r in results.items()})
