"""Hot-path micro-benchmark: vectorized vs pre-vectorization reference.

Times every stage that PR 2 vectorized against the faithful pre-change
implementation preserved in :mod:`repro.core.reference`, asserts the
outputs still agree, and writes a ``BENCH_hotpath.json`` artifact into the
shared benchmark cache directory (``REPRO_CACHE_DIR``, default
``benchmarks/_cache``) so the perf trajectory of the hot path is visible
to every future PR.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s

Stages (all at the default model config, Chengdu ε_τ = ε_ρ × 8):

==========================  ==================================================
``decode_greedy_steps``     greedy decode step loop (reachability + masks)
``beam_search``             beam decode (flattened top-k vs per-beam lists)
``subgraph_generation``     cold sub-graph construction for a (b, l) grid
``subgraph_batch_warm``     warm union assembly from cached sub-graphs
``interpolation_prior``     decode-time position prior (R-tree + scatter)
``constraint_ingest``       Eq. 16 sparse masks from raw GPS fixes
``constraint_tensor``       dense (b, l_ρ, |V|) mask materialization
``gnn_scatter``             GNN message scatter-add kernel
``reachability_build``      k-hop reachability closure construction
==========================  ==================================================

Budget knobs: ``REPRO_BENCH_HOTPATH_TRAJECTORIES`` (default 48),
``REPRO_BENCH_HOTPATH_BATCH`` (default 24), ``REPRO_BENCH_HOTPATH_REPEATS``
(default 3).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import profile
from repro.core import RNTrajRec, reference
from repro.core.decoder import ReachabilityMask, interpolation_prior
from repro.core.subgraph_gen import SubGraphGenerator
from repro.experiments import (
    bench_budget,
    bench_environment,
    get_dataset,
    small_model_config,
)
from repro.nn.tensor import scatter_sum_array
from repro.trajectory import make_batch
from repro.trajectory.dataset import constraint_for_fix

ARTIFACT_NAME = "BENCH_hotpath.json"


def _hotpath_budget() -> dict:
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_HOTPATH_TRAJECTORIES", 48)),
        "batch": int(os.environ.get("REPRO_BENCH_HOTPATH_BATCH", 24)),
        "repeats": int(os.environ.get("REPRO_BENCH_HOTPATH_REPEATS", 3)),
        "hidden": bench_budget()["hidden"],
        # The speedup bar for the required stages.  2x locally; CI lowers it
        # (shared runners are noisy/throttled) while output-equality stays
        # a hard assert everywhere.
        "min_speedup": float(os.environ.get("REPRO_BENCH_HOTPATH_MIN_SPEEDUP", 2.0)),
    }


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _stage(rows, name, before_fn, after_fn, repeats, match_fn):
    """Time one before/after pair and record equality of their outputs."""
    out_before = before_fn()
    out_after = after_fn()
    matches = bool(match_fn(out_before, out_after))
    before_s = _best_of(before_fn, repeats)
    after_s = _best_of(after_fn, repeats)
    rows.append({
        "stage": name,
        "before_ms": round(1000.0 * before_s, 3),
        "after_ms": round(1000.0 * after_s, 3),
        "speedup": round(before_s / max(after_s, 1e-12), 2),
        "outputs_match": matches,
    })
    return rows[-1]


def _pair_equal(a, b) -> bool:
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def _graphs_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, field), getattr(b, field))
        for field in ("node_segments", "node_weights", "graph_ids", "edge_index")
    )


def _max_ulp(a, b) -> float:
    """Largest unit-in-the-last-place distance between two arrays."""
    return float(np.max(np.abs(a - b) / np.spacing(np.maximum(np.abs(a), 1e-300))))


def run_hotpath_bench(trajectories: int = 48, batch_size: int = 24,
                      repeats: int = 3, hidden: int = 32) -> dict:
    """Run every stage and return the artifact payload (pure function of
    its budget arguments — the smoke test calls this with tiny sizes)."""
    data = get_dataset("chengdu", trajectories, 8)
    network = data.network
    config = small_model_config(hidden)
    model = RNTrajRec(network, config)
    model.eval()

    pool = data.train + data.val + data.test
    batch = make_batch(pool[:batch_size])
    small = make_batch(pool[: max(2, batch_size // 6)])
    num_segments = network.num_segments

    rows: list = []

    # --- Decode: greedy step loop and beam expansion -------------------
    encoded = model.encode(batch)
    prior = interpolation_prior(batch, network, config.decode_prior_scale,
                                config.decode_prior_floor)
    constraint = batch.constraint_tensor(num_segments) * prior
    reach_ref = reference.ReferenceReachability(network.out_neighbors,
                                                hops=config.reachability_hops)
    decoder = model.decoder
    features, state = encoded.point_features, encoded.trajectory_feature
    decode_row = _stage(
        rows, "decode_greedy_steps",
        lambda: reference.reference_decode_greedy(
            decoder, features, state, batch.target_length, constraint, reach_ref),
        lambda: decoder.decode_greedy(
            features, state, batch.target_length, constraint,
            reachability=model.reachability),
        repeats, _pair_equal,
    )

    enc_small = model.encode(small)
    constraint_small = small.constraint_tensor(num_segments)
    _stage(
        rows, "beam_search",
        lambda: reference.reference_decode_beam(
            decoder, enc_small.point_features, enc_small.trajectory_feature,
            small.target_length, constraint_small, beam_width=4),
        lambda: decoder.decode_beam(
            enc_small.point_features, enc_small.trajectory_feature,
            small.target_length, constraint_small, beam_width=4),
        repeats,
        lambda a, b: bool(np.array_equal(a[0], b[0])
                          and np.allclose(a[1], b[1], atol=1e-12)),
    )

    # --- Sub-graph generation (cold) and union assembly (warm) ---------
    gen_ref = reference.ReferenceSubGraphGenerator(network, config)
    gen_new = SubGraphGenerator(network, config)

    def cold_ref():
        gen_ref._cache.clear()
        return gen_ref.batch(batch.input_xy)

    def cold_new():
        gen_new.clear_cache()
        return gen_new.batch(batch.input_xy)

    subgraph_row = _stage(rows, "subgraph_generation", cold_ref, cold_new,
                          repeats, _graphs_equal)
    _stage(rows, "subgraph_batch_warm",
           lambda: gen_ref.batch(batch.input_xy),
           lambda: gen_new.batch(batch.input_xy),
           max(repeats, 5), _graphs_equal)

    # --- Interpolation prior -------------------------------------------
    # Vectorized np.exp (SIMD) vs the seed's scalar np.exp can differ in
    # the last ulp, so the prior is checked to ulp precision rather than
    # bitwise; the decode stage above proves the recovered trajectories
    # are identical.
    _stage(
        rows, "interpolation_prior",
        lambda: reference.reference_interpolation_prior(
            batch, network, config.decode_prior_scale, config.decode_prior_floor),
        lambda: interpolation_prior(
            batch, network, config.decode_prior_scale, config.decode_prior_floor),
        max(1, repeats - 1),
        lambda a, b: _max_ulp(a, b) <= 16.0,
    )

    # --- Constraint masks: raw-fix ingest and dense materialization ----
    fixes = [(float(x), float(y))
             for sample in batch.samples for x, y in sample.raw_low.xy]

    def ingest_ref():
        return [reference.reference_constraint_for_fix(network, x, y, 15.0, 100.0)
                for x, y in fixes]

    def ingest_new():
        return [constraint_for_fix(network, x, y, 15.0, 100.0)
                for x, y in fixes]

    _stage(rows, "constraint_ingest", ingest_ref, ingest_new, repeats,
           lambda a, b: all(np.array_equal(i1, i2) and np.array_equal(w1, w2)
                            for (i1, w1), (i2, w2) in zip(a, b)))
    _stage(rows, "constraint_tensor",
           lambda: reference.reference_constraint_tensor(batch, num_segments),
           lambda: batch.constraint_tensor(num_segments),
           max(repeats, 5),
           lambda a, b: bool(np.array_equal(a, b)))

    # --- GNN scatter kernel and reachability closure -------------------
    graphs = gen_new.batch(batch.input_xy)
    rng = np.random.default_rng(0)
    # The per-head attention-weight shape GAT normalizes over (E, heads).
    messages = rng.normal(size=(graphs.edge_index.shape[1], 4))
    destinations = graphs.edge_index[1]
    _stage(rows, "gnn_scatter",
           lambda: reference.reference_scatter_sum(messages, destinations,
                                                   graphs.num_nodes),
           lambda: scatter_sum_array(messages, destinations, graphs.num_nodes),
           max(repeats, 10),
           lambda a, b: bool(np.array_equal(a, b)))
    _stage(rows, "reachability_build",
           lambda: reference.ReferenceReachability(network.out_neighbors, hops=2),
           lambda: ReachabilityMask(network.out_neighbors, hops=2),
           repeats,
           lambda a, b: all(set(x.tolist()) == set(y.tolist())
                            for x, y in zip(a._sets, b._sets)))

    # --- End-to-end profile breakdown ----------------------------------
    profile.reset()
    profile.enable()
    model.recover(batch)
    profile.disable()

    return {
        "benchmark": "hotpath",
        "env": bench_environment(),
        "dataset": "chengdu_x8",
        "budget": {"trajectories": trajectories, "batch": batch_size,
                   "repeats": repeats, "hidden": hidden},
        "num_segments": int(num_segments),
        "num_parameters": int(model.num_parameters()),
        "rows": rows,
        "profile_sections": profile.stats()["sections"],
        "required": {
            "decode_greedy_steps": decode_row["speedup"],
            "subgraph_generation": subgraph_row["speedup"],
        },
    }


def print_artifact(artifact: dict) -> None:
    print("\nHot-path vectorization — before (reference) vs after, "
          f"|V| = {artifact['num_segments']}")
    header = f"{'stage':<24}{'before ms':>12}{'after ms':>12}{'speedup':>9}{'match':>7}"
    print(header)
    print("-" * len(header))
    for row in artifact["rows"]:
        print(f"{row['stage']:<24}{row['before_ms']:>12.2f}{row['after_ms']:>12.2f}"
              f"{row['speedup']:>8.2f}x{'  yes' if row['outputs_match'] else '   NO'}")


def test_hotpath_speedups():
    budget = _hotpath_budget()
    artifact = run_hotpath_bench(
        trajectories=budget["trajectories"], batch_size=budget["batch"],
        repeats=budget["repeats"], hidden=budget["hidden"],
    )
    print_artifact(artifact)

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    with open(cache_dir / ARTIFACT_NAME, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"wrote {cache_dir / ARTIFACT_NAME}")

    assert all(row["outputs_match"] for row in artifact["rows"]), \
        [row["stage"] for row in artifact["rows"] if not row["outputs_match"]]
    # The acceptance bar: >= 2x (locally; REPRO_BENCH_HOTPATH_MIN_SPEEDUP
    # relaxes it on noisy CI runners) on the decode step loop and on
    # sub-graph generation, with identical outputs.
    bar = budget["min_speedup"]
    assert artifact["required"]["decode_greedy_steps"] >= bar, artifact["required"]
    assert artifact["required"]["subgraph_generation"] >= bar, artifact["required"]


if __name__ == "__main__":
    test_hotpath_speedups()
