"""Cluster benchmark: sharded per-city serving vs a monolithic deployment.

The scenario is the production shape ``repro.cluster`` exists for: one
metro area of ``DISTRICTS`` road districts, sustained mixed traffic with
popular-route repeats, and **rolling per-district model rollouts** (every
``UPDATE_EVERY`` requests one district gets a freshly built model, round
robin).  The same request + rollout schedule is replayed against

* ``shards=1`` — the monolithic baseline: ONE recovery service over the
  merged metro network (``repro.roadnet.merge_networks``).  A district
  rollout means redeploying the whole-metro model: model construction and
  road-feature re-warm scale with the full |V|, and — because result-cache
  keys fold in the model generation — every district's cache is
  invalidated at once;
* ``shards=2`` / ``shards=4`` — geographic sharding: each rollout
  rebuilds only the owning shard's model and only that shard's cache goes
  cold; siblings keep serving hot.

Aggregate throughput at 4 shards must be ≥ ``REPRO_BENCH_CLUSTER_MIN_SCALING``
(default 2.5) times the monolith.  A second scenario drives one shard past
its admission bound and asserts the cluster **sheds** (429-style
``ShardOverloaded``) instead of queueing unboundedly.  A third scenario
measures **memory scaling**: a ~10x-|V| city is frozen into a
:class:`~repro.roadnet.CityArtifacts` bundle by a subprocess (so the build
transients never touch this process), then served by N replicas sharing
one mmap-loaded artifact set versus ONE replica over private in-memory
copies — total extra RSS of the N shared replicas must stay ≤
``REPRO_BENCH_CLUSTER_MEM_MAX_RSS_RATIO`` (default 1.35) times the single
in-memory replica at ≥ ``.._MEM_MIN_QPS_RATIO`` (default 1.0) times its
throughput, with bit-identical outputs.  Results — including per-shard
p50/p99, the shed rate and the memory section — are written to
``BENCH_cluster.json`` in the shared cache directory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q -s

Budget knobs (env): ``REPRO_BENCH_CLUSTER_REQUESTS`` (96),
``_TRAJECTORIES`` (120), ``_HOT`` (3), ``_REPEAT`` (0.95),
``_UPDATE_EVERY`` (8), ``_HIDDEN`` (32), ``_MIN_SCALING`` (2.5);
memory scenario: ``REPRO_BENCH_CLUSTER_MEM_BLOCK`` (40 → ~10x the
district |V|), ``_MEM_REPLICAS`` (4), ``_MEM_TRAJECTORIES`` (24),
``_MEM_REQUESTS`` (32), ``_MEM_HIDDEN`` (32), ``_MEM_MAX_RSS_RATIO``
(1.35), ``_MEM_MIN_QPS_RATIO`` (1.0 with >1 CPU, 0.8 on one core —
N replica threads on a single core pay the GIL convoy tax).

Note on hardware: on a multi-core box sharding *also* wins steady-state
wall clock (each shard decodes on its own scheduler thread); the rollout
scenario above is the part that holds even on one core, which is why it
is the asserted headline.  The steady-state rows are reported unasserted.
"""

import gc
import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import profile
from repro.cluster import RecoveryCluster, ShardMap, ShardSpec
from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import small_model_config
from repro.roadnet import CityArtifacts, generate_city, merge_networks
from repro.serve import ModelRegistry, RecoveryRequest, RecoveryService, ServeConfig
from repro.trajectory.dataset import build_samples
from repro.trajectory.simulate import TrajectorySimulator

ARTIFACT_NAME = "BENCH_cluster.json"
DISTRICTS = 4
GAP = 700.0      # empty corridor between districts (> 2x routing margin)
MARGIN = 60.0


def _budget():
    env = os.environ.get
    return {
        "requests": int(env("REPRO_BENCH_CLUSTER_REQUESTS", 96)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_TRAJECTORIES", 48)),
        "hot": int(env("REPRO_BENCH_CLUSTER_HOT", 3)),
        "repeat": float(env("REPRO_BENCH_CLUSTER_REPEAT", 0.95)),
        "update_every": int(env("REPRO_BENCH_CLUSTER_UPDATE_EVERY", 8)),
        "hidden": int(env("REPRO_BENCH_CLUSTER_HIDDEN", 32)),
        # District road density: the paper's cities run 8.7k-35k segments;
        # block=125 m gives ~1.4k per district (~5.7k merged), enough for
        # the |V|-dependent deploy costs to behave like production instead
        # of like a toy grid.  CI smoke can relax to 250.
        "block": float(env("REPRO_BENCH_CLUSTER_BLOCK", 125.0)),
        "min_scaling": float(env("REPRO_BENCH_CLUSTER_MIN_SCALING", 2.5)),
    }


# ---------------------------------------------------------------------------
# Metro fixture: district networks, origins, request schedule
# ---------------------------------------------------------------------------
def _district_city(budget):
    """The district recipe: chengdu's rectangle at benchmark density."""
    base = get_spec("chengdu")
    return replace(base.city, block=budget["block"], minor_fraction=0.7)


def _district_layout(network):
    """(origins, bbox_of) derived from the generated network's ACTUAL
    bounds — generate_city rounds the extent up to a multiple of the
    block size, so the nominal city rectangle under-covers for block
    sizes that don't divide it."""
    x0, y0, x1, y1 = network.bounds()
    dx, dy = (x1 - x0) + GAP, (y1 - y0) + GAP
    origins = [(0.0, 0.0), (dx, 0.0), (0.0, dy), (dx, dy)][:DISTRICTS]

    def bbox_of(origin):
        ox, oy = origin
        return (ox + x0 - MARGIN, oy + y0 - MARGIN,
                ox + x1 + MARGIN, oy + y1 + MARGIN)

    return origins, bbox_of


@pytest.fixture(scope="module")
def metro():
    budget = _budget()
    base = get_spec("chengdu")
    network = generate_city(_district_city(budget))
    simulator = TrajectorySimulator(network, base.simulation)
    pairs = simulator.simulate(budget["trajectories"])
    pool = build_samples(pairs, network, base.dataset)
    if len(pool) < budget["hot"] + 2:
        raise RuntimeError("trajectory budget too small for the hot set")
    origins, bbox_of = _district_layout(network)

    # The deterministic request schedule: round-robin districts, each draw
    # either a popular ("hot") trace or a cold one, translated into the
    # district's region of the global frame.
    rng = np.random.default_rng(7)
    schedule = []
    cold_cursor = 0
    for i in range(budget["requests"]):
        district = i % DISTRICTS
        if rng.random() < budget["repeat"]:
            sample = pool[int(rng.integers(budget["hot"]))]
        else:
            sample = pool[budget["hot"] + cold_cursor % (len(pool) - budget["hot"])]
            cold_cursor += 1
        schedule.append((district, sample))
    return {"network": network, "pool": pool, "origins": origins,
            "bbox_of": bbox_of, "schedule": schedule, "budget": budget}


def _build_cluster(metro, num_shards, max_inflight=64):
    """A cluster whose shards each own DISTRICTS/num_shards districts;
    shards=1 is the monolith over the merged metro network."""
    base_network, origins = metro["network"], metro["origins"]
    per_shard = DISTRICTS // num_shards
    groups = [list(range(s * per_shard, (s + 1) * per_shard))
              for s in range(num_shards)]

    specs, networks, district_shard = [], {}, {}
    spec_cfg = get_spec("chengdu")
    serve = {
        # Ingest must match the dataset the traces come from (the shards
        # have dataset=None because their networks are merged districts).
        "interval": spec_cfg.simulation.sample_interval,
        "beta": spec_cfg.dataset.beta,
        "max_gps_error": spec_cfg.dataset.max_gps_error,
        "max_batch_size": 16,
        "max_wait_ms": 25.0,
        "cache_capacity": 2048,
    }
    for shard_index, members in enumerate(groups):
        name = f"shard{shard_index}"
        shard_origin = origins[members[0]]
        local_offsets = [(origins[m][0] - shard_origin[0],
                          origins[m][1] - shard_origin[1]) for m in members]
        networks[name] = merge_networks([base_network] * len(members),
                                        local_offsets)
        boxes = [metro["bbox_of"](origins[m]) for m in members]
        bbox = (min(b[0] for b in boxes), min(b[1] for b in boxes),
                max(b[2] for b in boxes), max(b[3] for b in boxes))
        specs.append(ShardSpec(name=name, origin=shard_origin, bbox=bbox,
                               max_inflight=max_inflight))
        for member in members:
            district_shard[member] = name

    budget = metro["budget"]
    cluster = RecoveryCluster(
        ShardMap(shards=tuple(specs), cell_size=250.0, serve=serve),
        model_factory=lambda spec, network: RNTrajRec(
            network, small_model_config(budget["hidden"])).eval(),
        network_factory=lambda spec: networks[spec.name],
    )
    return cluster, district_shard


def _request(metro, index, district, sample):
    offset = np.asarray(metro["origins"][district])
    return RecoveryRequest(sample.raw_low.xy + offset, sample.raw_low.times,
                           hour=sample.hour, holiday=sample.holiday,
                           request_id=f"r{index}")


def _replay(metro, num_shards, rolling_updates):
    """Wall-clock one full schedule replay; returns the artifact row dict."""
    budget = metro["budget"]
    cluster, district_shard = _build_cluster(metro, num_shards)
    try:
        cluster.warm()
        # Prime each district once so one-off structure warm-up (road
        # features, reachability closure) is out of the timed region for
        # every configuration alike.
        priming = [_request(metro, -1 - d, d, metro["pool"][0])
                   for d in range(DISTRICTS)]
        assert all(r.ok for r in cluster.recover_many(priming, timeout=600.0))

        hidden = budget["hidden"]
        window = budget["update_every"]
        schedule = metro["schedule"]
        rollouts = 0
        start = time.perf_counter()
        for chunk_start in range(0, len(schedule), window):
            chunk = schedule[chunk_start:chunk_start + window]
            requests = [_request(metro, chunk_start + j, district, sample)
                        for j, (district, sample) in enumerate(chunk)]
            results = cluster.recover_many(requests, timeout=600.0)
            assert all(r.ok for r in results), [r.error for r in results if not r.ok]
            if rolling_updates and chunk_start + window < len(schedule):
                # One district's model is retrained and rolled out.  The
                # monolith can only express that as a whole-metro redeploy;
                # a sharded cluster rebuilds just the owning shard.
                shard_name = district_shard[rollouts % DISTRICTS]
                shard_network = cluster.shard(shard_name).network
                fresh = RNTrajRec(shard_network,
                                  small_model_config(hidden)).eval()
                cluster.deploy_model(shard_name, f"roll{rollouts}", fresh)
                rollouts += 1
        elapsed = time.perf_counter() - start
        stats = cluster.stats()
    finally:
        cluster.close()

    shard_latency = {
        name: {"p50_ms": s.get("latency_ms_p50", 0.0),
               "p99_ms": s.get("latency_ms_p99", 0.0)}
        for name, s in stats["shards"].items()
    }
    row = {
        "shards": num_shards,
        "rolling_updates": rolling_updates,
        "requests": len(metro["schedule"]),
        "rollouts": rollouts,
        "wall_seconds": round(elapsed, 3),
        "qps": round(len(metro["schedule"]) / elapsed, 3),
        "cache_hit_rate": round(
            stats["cluster"]["cache_hits"]
            / max(stats["cluster"]["requests"], 1), 4),
        "shed": stats["cluster"]["shed"],
        "unroutable": stats["cluster"]["unroutable"],
        "per_shard_latency": shard_latency,
        "segments_per_shard": (DISTRICTS // num_shards
                               * metro["network"].num_segments),
    }
    return row


# ---------------------------------------------------------------------------
# Scenario 1: throughput vs shard count under rolling per-district rollouts
# ---------------------------------------------------------------------------
def test_cluster_throughput_vs_shard_count(metro):
    budget = metro["budget"]
    rows = [_replay(metro, s, rolling_updates=True) for s in (1, 2, 4)]
    steady = [_replay(metro, s, rolling_updates=False) for s in (1, 4)]

    base_qps = rows[0]["qps"]
    for row in rows:
        row["scaling_vs_monolith"] = round(row["qps"] / base_qps, 3)

    print("\nCluster serving — 4-district metro, rolling per-district rollouts")
    header = (f"{'shards':>7}{'QPS':>9}{'scaling':>9}{'hit rate':>10}"
              f"{'wall s':>8}{'rollouts':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['shards']:>7}{row['qps']:>9.2f}"
              f"{row['scaling_vs_monolith']:>9.2f}{row['cache_hit_rate']:>10.2f}"
              f"{row['wall_seconds']:>8.2f}{row['rollouts']:>9}")
    print("steady state (no rollouts, unasserted): "
          + ", ".join(f"{r['shards']} shard(s) {r['qps']:.2f} QPS"
                      for r in steady))

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    artifact = {
        "benchmark": "cluster",
        "workload": {k: budget[k] for k in
                     ("requests", "trajectories", "hot", "repeat",
                      "update_every", "hidden", "block")},
        "districts": DISTRICTS,
        "district_segments": metro["network"].num_segments,
        "rows": rows,
        "steady_rows": steady,
    }

    # No request may be silently dropped in the capacity-sized runs.
    for row in rows + steady:
        assert row["shed"] == 0 and row["unroutable"] == 0
    # The headline: sharding beats the monolith on the rollout workload.
    scaling = rows[-1]["qps"] / base_qps
    artifact["scaling_4_vs_1"] = round(scaling, 3)
    with open(artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"4 shards vs monolith: {scaling:.2f}x  (floor "
          f"{budget['min_scaling']}x); wrote {artifact_path}")
    assert scaling >= budget["min_scaling"], (
        f"4-shard cluster only {scaling:.2f}x the monolith "
        f"(need >= {budget['min_scaling']}x)")


# ---------------------------------------------------------------------------
# Scenario 2: overload sheds instead of queueing unboundedly
# ---------------------------------------------------------------------------
def test_overload_sheds_instead_of_queueing(metro):
    cluster, _ = _build_cluster(metro, 4, max_inflight=2)
    burst = 48
    try:
        cluster.warm()
        pool = metro["pool"]
        prime = cluster.recover(_request(metro, -1, 0, pool[0]), timeout=600.0)
        assert prime.shard == "shard0"

        # Fire the whole burst at ONE district without waiting.  Distinct
        # traces (the request cache must not absorb the burst): admission
        # is bounded at max_inflight=2, everything beyond must shed fast.
        def burst_request(i):
            request = _request(metro, i, 0, pool[1 + i % (len(pool) - 1)])
            # Sub-meter jitter beyond the cache quantization: repeats of a
            # pool trace within the burst stay distinct cache keys.
            return RecoveryRequest(request.xy + 0.25 * (1 + i // len(pool)),
                                   request.times, hour=request.hour,
                                   holiday=request.holiday,
                                   request_id=request.request_id)

        futures = [cluster.submit(burst_request(i)) for i in range(burst)]
        stats_during = cluster.stats()
        outcomes = {"ok": 0, "shed": 0}
        for future in futures:
            try:
                future.result(timeout=600.0)
                outcomes["ok"] += 1
            except Exception as exc:
                assert "overloaded" in str(exc)
                outcomes["shed"] += 1
        stats = cluster.stats()
    finally:
        cluster.close()

    shed_rate = outcomes["shed"] / burst
    print(f"\nOverload: burst={burst} at max_inflight=2 → served "
          f"{outcomes['ok']}, shed {outcomes['shed']} "
          f"(shed rate {shed_rate:.2f})")

    # Shedding, not unbounded queueing: the in-flight gauge never exceeds
    # the admission bound, sheds are recorded and dead-lettered, and
    # everything is accounted for.
    assert outcomes["ok"] + outcomes["shed"] == burst
    assert outcomes["shed"] > 0
    assert stats_during["shards"]["shard0"]["inflight"] <= 2
    assert stats["router"]["shed_by_shard"].get("shard0", 0) == outcomes["shed"]
    assert sum(1 for letter in cluster.telemetry.dead_letters()
               if letter["reason"] == "shed") > 0

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    artifact_path = cache_dir / ARTIFACT_NAME
    if artifact_path.exists():  # annotate the scenario-1 artifact
        payload = json.loads(artifact_path.read_text())
        payload["overload"] = {
            "burst": burst, "max_inflight": 2,
            "served": outcomes["ok"], "shed": outcomes["shed"],
            "shed_rate": round(shed_rate, 3),
        }
        artifact_path.write_text(json.dumps(payload, indent=1))


# ---------------------------------------------------------------------------
# Scenario 3: zero-copy shared artifacts — ~10x |V| city, N replicas, ~1x RSS
# ---------------------------------------------------------------------------
def _mem_budget():
    env = os.environ.get
    return {
        # block=40 m on chengdu's rectangle gives ~14k segments — ~10x the
        # throughput scenario's district (block=125 → ~1.4k) and inside
        # the paper's 8.7k-35k city range.  CI smoke relaxes to ~80.
        "block": float(env("REPRO_BENCH_CLUSTER_MEM_BLOCK", 40.0)),
        "replicas": int(env("REPRO_BENCH_CLUSTER_MEM_REPLICAS", 4)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_MEM_TRAJECTORIES", 24)),
        "requests": int(env("REPRO_BENCH_CLUSTER_MEM_REQUESTS", 32)),
        # hidden=32 keeps the decode GEMMs big enough to release the GIL,
        # so N replica threads aren't serialized against one batcher.
        "hidden": int(env("REPRO_BENCH_CLUSTER_MEM_HIDDEN", 32)),
        "max_rss_ratio": float(env("REPRO_BENCH_CLUSTER_MEM_MAX_RSS_RATIO", 1.35)),
        # No-throughput-loss gate.  N replicas on one core pay the GIL
        # convoy tax for N compute threads (~10-15% here, same reason the
        # scenario-1 steady-state rows are unasserted on one core), so the
        # default relaxes there; with real cores the replicas decode in
        # parallel and must at least match the single in-memory replica.
        "min_qps_ratio": float(env(
            "REPRO_BENCH_CLUSTER_MEM_MIN_QPS_RATIO",
            1.0 if (os.cpu_count() or 1) > 1 else 0.8)),
    }


#: Runs in a subprocess: the ~10x city build (network generation, model
#: init, X_road warm-up, trajectory simulation) allocates far more than
#: the frozen artifacts occupy, and a child process keeps those transients
#: out of the parent's RSS baseline entirely.
_MEM_BUILDER = r"""
import os
from dataclasses import replace

import numpy as np

from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import small_model_config
from repro.roadnet import CityArtifacts, generate_city
from repro.trajectory.dataset import build_samples
from repro.trajectory.simulate import TrajectorySimulator

out = os.environ["REPRO_MEM_OUT"]
spec = get_spec("chengdu")
network = generate_city(replace(spec.city,
                                block=float(os.environ["REPRO_MEM_BLOCK"]),
                                minor_fraction=0.7))
model = RNTrajRec(network,
                  small_model_config(int(os.environ["REPRO_MEM_HIDDEN"]))).eval()
CityArtifacts.build(network, model=model).save(os.path.join(out, "city"))

pairs = TrajectorySimulator(network, spec.simulation).simulate(
    int(os.environ["REPRO_MEM_TRAJECTORIES"]))
pool = build_samples(pairs, network, spec.dataset)
traces = {"hours": np.array([s.hour for s in pool]),
          "holidays": np.array([s.holiday for s in pool])}
for i, sample in enumerate(pool):
    traces[f"xy{i}"] = np.asarray(sample.raw_low.xy)
    traces[f"t{i}"] = np.asarray(sample.raw_low.times)
np.savez(os.path.join(out, "traces.npz"), **traces)
print(f"builder: {network.num_segments} segments, {len(pool)} traces",
      flush=True)
"""


def test_memory_scaling_shared_artifacts(tmp_path):
    budget = _mem_budget()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env.update(REPRO_MEM_OUT=str(tmp_path),
               REPRO_MEM_BLOCK=str(budget["block"]),
               REPRO_MEM_HIDDEN=str(budget["hidden"]),
               REPRO_MEM_TRAJECTORIES=str(budget["trajectories"]))
    subprocess.run([sys.executable, "-c", _MEM_BUILDER], env=env, check=True)

    traces = np.load(tmp_path / "traces.npz")
    hours, holidays = traces["hours"], traces["holidays"]
    # Trace n-1 is reserved for per-phase priming; the timed schedule
    # cycles the rest with sub-meter jitter past the cache quantization,
    # so repeats decode for real instead of hitting the result cache.
    pool_size = max(len(hours) - 1, 1)

    def request_at(index, round_no=0):
        k = index % pool_size
        jitter = 0.25 * (index // pool_size) + 2.0 * round_no
        return RecoveryRequest(traces[f"xy{k}"] + jitter, traces[f"t{k}"],
                               hour=int(hours[k]), holiday=bool(holidays[k]),
                               request_id=f"m{round_no}.{index}")

    spec = get_spec("chengdu")
    serve_kwargs = dict(interval=spec.simulation.sample_interval,
                        beta=spec.dataset.beta,
                        max_gps_error=spec.dataset.max_gps_error,
                        max_batch_size=8, max_wait_ms=10.0, cache_capacity=16)
    prime = RecoveryRequest(traces[f"xy{pool_size}"], traces[f"t{pool_size}"],
                            hour=int(hours[-1]), holiday=bool(holidays[-1]),
                            request_id="prime")
    # The whole schedule is offered concurrently in both phases (same
    # offered load; capacity is the variable), and one executor serves
    # both so thread-stack overhead never skews a single phase's delta.
    executor = ThreadPoolExecutor(max_workers=budget["requests"])

    def replay(services):
        """Two timed rounds over the schedule (round 1 shifts every trace
        2 m, past the cache quantization, so it decodes for real); the
        faster round is the phase's wall clock, round 0's responses its
        equivalence transcript."""
        services[0].recover(prime, timeout=600.0)  # warm outside the clock
        responses, elapsed = None, float("inf")
        for round_no in (0, 1):
            start = time.perf_counter()
            futures = [executor.submit(services[i % len(services)].recover,
                                       request_at(i, round_no), 600.0)
                       for i in range(budget["requests"])]
            round_responses = [f.result() for f in futures]
            elapsed = min(elapsed, time.perf_counter() - start)
            if round_no == 0:
                responses = round_responses
        return responses, elapsed

    def rss() -> float:
        """Pinned RSS: collect garbage and hand the allocator's free pages
        back to the OS before sampling, so the phases are compared on the
        memory they actually *hold* (mmap-resident artifact pages, private
        copies, live objects) rather than on glibc's per-thread arena
        high-water marks, which retain freed decode transients
        indefinitely (production tames those with MALLOC_TRIM_THRESHOLD /
        MALLOC_ARENA_MAX; a benchmark gate must not hinge on them)."""
        gc.collect()
        try:
            import ctypes
            ctypes.CDLL("libc.so.6").malloc_trim(0)
        except Exception:
            pass  # non-glibc: arena slack stays in both phases alike
        return profile.memory_snapshot()["rss_mb"]

    closers = []
    try:
        # One-time process costs — lazy imports, numpy scratch pools,
        # thread machinery, and above all the allocator's high-water mark
        # for N replicas' transient decode state (glibc arenas never
        # shrink back) — are paid by a throwaway clone of phase 1 that is
        # torn down again BEFORE the baseline RSS sample.  What the two
        # measured phases then add on top is the *resident structures*:
        # mmap-backed pages once vs private copies per replica.
        warm_art = CityArtifacts.load(str(tmp_path / "city"), mmap=True)
        warm_reg = ModelRegistry(artifacts=warm_art)
        warm_reg.register_artifact_model("default", activate=True)
        warm_svcs = [RecoveryService(warm_reg, ServeConfig(**serve_kwargs))
                     for _ in range(budget["replicas"])]
        try:
            replay(warm_svcs)
        finally:
            for service in warm_svcs:
                service.close()
        del warm_svcs, warm_reg, warm_art

        rss0 = rss()

        # Phase 1 — the PR's serving shape: ONE mmap-loaded artifact set,
        # one registry, N replica services over it (Shard semantics).
        started = time.perf_counter()
        shared = CityArtifacts.load(str(tmp_path / "city"), mmap=True)
        registry = ModelRegistry(artifacts=shared)
        registry.register_artifact_model("default", activate=True)
        replicas = [RecoveryService(registry, ServeConfig(**serve_kwargs))
                    for _ in range(budget["replicas"])]
        closers.extend(replicas)
        shared_startup = time.perf_counter() - started
        shared_responses, shared_elapsed = replay(replicas)
        rss1 = rss()

        # Phase 2 — the pre-PR baseline unit: ONE replica over private
        # in-memory copies of the same frozen state (mmap=False), stacked
        # on top so rss2-rss1 isolates exactly one such replica.  N
        # baseline replicas would cost ~N times this delta.
        started = time.perf_counter()
        private = CityArtifacts.load(str(tmp_path / "city"), mmap=False)
        baseline_registry = ModelRegistry(artifacts=private)
        baseline_registry.register_artifact_model("default", activate=True)
        baseline = RecoveryService(baseline_registry, ServeConfig(**serve_kwargs))
        closers.append(baseline)
        baseline_startup = time.perf_counter() - started
        baseline_responses, baseline_elapsed = replay([baseline])
        rss2 = rss()
    finally:
        for service in closers:
            service.close()
        executor.shutdown(wait=False)

    # Bit-identity: the shared mmap stack and the private copy stack must
    # produce exactly the same recoveries for the whole schedule.
    for ours, theirs in zip(shared_responses, baseline_responses):
        assert np.array_equal(ours.trajectory.segments, theirs.trajectory.segments)
        assert np.array_equal(np.asarray(ours.trajectory.ratios),
                              np.asarray(theirs.trajectory.ratios))
        assert np.array_equal(ours.trajectory.times, theirs.trajectory.times)

    shared_delta = max(rss1 - rss0, 0.0)
    baseline_delta = max(rss2 - rss1, 1e-6)
    rss_ratio = shared_delta / baseline_delta
    shared_qps = budget["requests"] / shared_elapsed
    baseline_qps = budget["requests"] / baseline_elapsed
    qps_ratio = shared_qps / baseline_qps
    segments = registry.network.num_segments

    print(f"\nMemory scaling — {segments} segments, "
          f"{budget['replicas']} shared replicas vs 1 in-memory replica")
    print(f"  shared   : +{shared_delta:.1f} MiB, {shared_qps:.2f} QPS, "
          f"startup {shared_startup:.2f}s (mmap)")
    print(f"  in-memory: +{baseline_delta:.1f} MiB, {baseline_qps:.2f} QPS, "
          f"startup {baseline_startup:.2f}s (private copies)")
    print(f"  RSS ratio {rss_ratio:.2f}x (gate <= {budget['max_rss_ratio']}x; "
          f"naive {budget['replicas']}x replication ~"
          f"{budget['replicas'] * baseline_delta:.0f} MiB), "
          f"QPS ratio {qps_ratio:.2f}x (gate >= {budget['min_qps_ratio']}x)")

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    payload = (json.loads(artifact_path.read_text())
               if artifact_path.exists() else {"benchmark": "cluster"})
    payload["memory"] = {
        "city_segments": segments,
        "replicas": budget["replicas"],
        "requests": budget["requests"],
        "workload": {k: budget[k] for k in ("block", "trajectories", "hidden")},
        "shared": {"rss_delta_mb": round(shared_delta, 1),
                   "qps": round(shared_qps, 3),
                   "startup_seconds": round(shared_startup, 3)},
        "inmemory": {"rss_delta_mb": round(baseline_delta, 1),
                     "qps": round(baseline_qps, 3),
                     "startup_seconds": round(baseline_startup, 3)},
        "naive_replication_rss_mb": round(
            budget["replicas"] * baseline_delta, 1),
        "rss_ratio": round(rss_ratio, 3),
        "qps_ratio": round(qps_ratio, 3),
        "max_rss_ratio": budget["max_rss_ratio"],
        "min_qps_ratio": budget["min_qps_ratio"],
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": True,
        "content_digest": shared.content_digest,
    }
    artifact_path.write_text(json.dumps(payload, indent=1))
    print(f"wrote memory section to {artifact_path}")

    assert rss_ratio <= budget["max_rss_ratio"], (
        f"{budget['replicas']} shared replicas cost {rss_ratio:.2f}x one "
        f"in-memory replica (need <= {budget['max_rss_ratio']}x)")
    assert qps_ratio >= budget["min_qps_ratio"], (
        f"shared replicas only {qps_ratio:.2f}x the in-memory replica's "
        f"throughput (need >= {budget['min_qps_ratio']}x)")
