"""Cluster benchmark: sharded per-city serving vs a monolithic deployment.

The scenario is the production shape ``repro.cluster`` exists for: one
metro area of ``DISTRICTS`` road districts, sustained mixed traffic with
popular-route repeats, and **rolling per-district model rollouts** (every
``UPDATE_EVERY`` requests one district gets a freshly built model, round
robin).  The same request + rollout schedule is replayed against

* ``shards=1`` — the monolithic baseline: ONE recovery service over the
  merged metro network (``repro.roadnet.merge_networks``).  A district
  rollout means redeploying the whole-metro model: model construction and
  road-feature re-warm scale with the full |V|, and — because result-cache
  keys fold in the model generation — every district's cache is
  invalidated at once;
* ``shards=2`` / ``shards=4`` — geographic sharding: each rollout
  rebuilds only the owning shard's model and only that shard's cache goes
  cold; siblings keep serving hot.

Aggregate throughput at 4 shards must be ≥ ``REPRO_BENCH_CLUSTER_MIN_SCALING``
(default 2.5) times the monolith.  A second scenario drives one shard past
its admission bound and asserts the cluster **sheds** (429-style
``ShardOverloaded``) instead of queueing unboundedly.  A third scenario
measures **memory scaling**: a ~10x-|V| city is frozen into a
:class:`~repro.roadnet.CityArtifacts` bundle by a subprocess (so the build
transients never touch this process), then served by N replicas sharing
one mmap-loaded artifact set versus ONE replica over private in-memory
copies — total extra RSS of the N shared replicas must stay ≤
``REPRO_BENCH_CLUSTER_MEM_MAX_RSS_RATIO`` (default 1.35) times the single
in-memory replica at ≥ ``.._MEM_MIN_QPS_RATIO`` (default 1.0) times its
throughput, with bit-identical outputs.  A fourth scenario compares the
two **execution backends** over the same frozen artifacts: N forked
worker *processes* (``ShardSpec.backend="process"``) vs N in-process
replica threads — bit-identical responses, a hardware-scaled QPS floor
(``REPRO_BENCH_CLUSTER_PROC_MIN_QPS_RATIO``: 2.0 with ≥ 4 cores, 1.2 with
2-3, 0.9 on one — threads and processes tie on a single core minus the
IPC tax), and a **marginal-cost memory gate**: each extra worker beyond
the first must cost ≤ ``.._PROC_MAX_MARGINAL_RATIO`` (default 0.6)
times a *private-loading* single worker (``mmap=False``).  A total-tree
gate cannot work here — every forked CPython worker irreducibly dirties
~15-25 MiB of refcount-touched interpreter pages, so even perfect
artifact sharing lands a 4-worker tree above 2x one worker — but the
marginal cost cleanly separates sharing (≈0.4x at the default block)
from a regression to private loading (≈1.0x).  The total and
naive-replication ratios are still recorded in the artifact,
unasserted.  Results — including per-shard p50/p99, the shed rate,
the memory section, the process-backend section and the raw-vs-pickle
IPC codec microbench — are written to ``BENCH_cluster.json`` in the
shared cache directory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q -s

Budget knobs (env): ``REPRO_BENCH_CLUSTER_REQUESTS`` (96),
``_TRAJECTORIES`` (120), ``_HOT`` (3), ``_REPEAT`` (0.95),
``_UPDATE_EVERY`` (8), ``_HIDDEN`` (32), ``_MIN_SCALING`` (2.5);
memory scenario: ``REPRO_BENCH_CLUSTER_MEM_BLOCK`` (40 → ~10x the
district |V|), ``_MEM_REPLICAS`` (4), ``_MEM_TRAJECTORIES`` (24),
``_MEM_REQUESTS`` (32), ``_MEM_HIDDEN`` (32), ``_MEM_MAX_RSS_RATIO``
(1.35), ``_MEM_MIN_QPS_RATIO`` (1.0 with >1 CPU, 0.8 on one core —
N replica threads on a single core pay the GIL convoy tax);
process scenario: ``REPRO_BENCH_CLUSTER_PROC_WORKERS`` (4),
``_PROC_REQUESTS`` (48), ``_PROC_TRAJECTORIES`` (24), ``_PROC_BLOCK``
(40), ``_PROC_HIDDEN`` (32), ``_PROC_MIN_QPS_RATIO`` (hardware-scaled,
see above), ``_PROC_MAX_MARGINAL_RATIO`` (0.6).

Note on hardware: on a multi-core box sharding *also* wins steady-state
wall clock (each shard decodes on its own scheduler thread); the rollout
scenario above is the part that holds even on one core, which is why it
is the asserted headline.  The steady-state rows are reported unasserted.
"""

import gc
import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import profile
from repro.cluster import RecoveryCluster, ShardMap, ShardSpec, WorkerPool
from repro.cluster.shard import Shard
from repro.cluster.workers import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import bench_environment, small_model_config
from repro.roadnet import CityArtifacts, generate_city, merge_networks
from repro.serve import ModelRegistry, RecoveryRequest, RecoveryService, ServeConfig
from repro.trajectory.dataset import build_samples
from repro.trajectory.simulate import TrajectorySimulator

ARTIFACT_NAME = "BENCH_cluster.json"
DISTRICTS = 4
GAP = 700.0      # empty corridor between districts (> 2x routing margin)
MARGIN = 60.0


def _budget():
    env = os.environ.get
    return {
        "requests": int(env("REPRO_BENCH_CLUSTER_REQUESTS", 96)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_TRAJECTORIES", 48)),
        "hot": int(env("REPRO_BENCH_CLUSTER_HOT", 3)),
        "repeat": float(env("REPRO_BENCH_CLUSTER_REPEAT", 0.95)),
        "update_every": int(env("REPRO_BENCH_CLUSTER_UPDATE_EVERY", 8)),
        "hidden": int(env("REPRO_BENCH_CLUSTER_HIDDEN", 32)),
        # District road density: the paper's cities run 8.7k-35k segments;
        # block=125 m gives ~1.4k per district (~5.7k merged), enough for
        # the |V|-dependent deploy costs to behave like production instead
        # of like a toy grid.  CI smoke can relax to 250.
        "block": float(env("REPRO_BENCH_CLUSTER_BLOCK", 125.0)),
        "min_scaling": float(env("REPRO_BENCH_CLUSTER_MIN_SCALING", 2.5)),
    }


# ---------------------------------------------------------------------------
# Metro fixture: district networks, origins, request schedule
# ---------------------------------------------------------------------------
def _district_city(budget):
    """The district recipe: chengdu's rectangle at benchmark density."""
    base = get_spec("chengdu")
    return replace(base.city, block=budget["block"], minor_fraction=0.7)


def _district_layout(network):
    """(origins, bbox_of) derived from the generated network's ACTUAL
    bounds — generate_city rounds the extent up to a multiple of the
    block size, so the nominal city rectangle under-covers for block
    sizes that don't divide it."""
    x0, y0, x1, y1 = network.bounds()
    dx, dy = (x1 - x0) + GAP, (y1 - y0) + GAP
    origins = [(0.0, 0.0), (dx, 0.0), (0.0, dy), (dx, dy)][:DISTRICTS]

    def bbox_of(origin):
        ox, oy = origin
        return (ox + x0 - MARGIN, oy + y0 - MARGIN,
                ox + x1 + MARGIN, oy + y1 + MARGIN)

    return origins, bbox_of


@pytest.fixture(scope="module")
def metro():
    budget = _budget()
    base = get_spec("chengdu")
    network = generate_city(_district_city(budget))
    simulator = TrajectorySimulator(network, base.simulation)
    pairs = simulator.simulate(budget["trajectories"])
    pool = build_samples(pairs, network, base.dataset)
    if len(pool) < budget["hot"] + 2:
        raise RuntimeError("trajectory budget too small for the hot set")
    origins, bbox_of = _district_layout(network)

    # The deterministic request schedule: round-robin districts, each draw
    # either a popular ("hot") trace or a cold one, translated into the
    # district's region of the global frame.
    rng = np.random.default_rng(7)
    schedule = []
    cold_cursor = 0
    for i in range(budget["requests"]):
        district = i % DISTRICTS
        if rng.random() < budget["repeat"]:
            sample = pool[int(rng.integers(budget["hot"]))]
        else:
            sample = pool[budget["hot"] + cold_cursor % (len(pool) - budget["hot"])]
            cold_cursor += 1
        schedule.append((district, sample))
    return {"network": network, "pool": pool, "origins": origins,
            "bbox_of": bbox_of, "schedule": schedule, "budget": budget}


def _build_cluster(metro, num_shards, max_inflight=64):
    """A cluster whose shards each own DISTRICTS/num_shards districts;
    shards=1 is the monolith over the merged metro network."""
    base_network, origins = metro["network"], metro["origins"]
    per_shard = DISTRICTS // num_shards
    groups = [list(range(s * per_shard, (s + 1) * per_shard))
              for s in range(num_shards)]

    specs, networks, district_shard = [], {}, {}
    spec_cfg = get_spec("chengdu")
    serve = {
        # Ingest must match the dataset the traces come from (the shards
        # have dataset=None because their networks are merged districts).
        "interval": spec_cfg.simulation.sample_interval,
        "beta": spec_cfg.dataset.beta,
        "max_gps_error": spec_cfg.dataset.max_gps_error,
        "max_batch_size": 16,
        "max_wait_ms": 25.0,
        "cache_capacity": 2048,
    }
    for shard_index, members in enumerate(groups):
        name = f"shard{shard_index}"
        shard_origin = origins[members[0]]
        local_offsets = [(origins[m][0] - shard_origin[0],
                          origins[m][1] - shard_origin[1]) for m in members]
        networks[name] = merge_networks([base_network] * len(members),
                                        local_offsets)
        boxes = [metro["bbox_of"](origins[m]) for m in members]
        bbox = (min(b[0] for b in boxes), min(b[1] for b in boxes),
                max(b[2] for b in boxes), max(b[3] for b in boxes))
        specs.append(ShardSpec(name=name, origin=shard_origin, bbox=bbox,
                               max_inflight=max_inflight))
        for member in members:
            district_shard[member] = name

    budget = metro["budget"]
    cluster = RecoveryCluster(
        ShardMap(shards=tuple(specs), cell_size=250.0, serve=serve),
        model_factory=lambda spec, network: RNTrajRec(
            network, small_model_config(budget["hidden"])).eval(),
        network_factory=lambda spec: networks[spec.name],
    )
    return cluster, district_shard


def _request(metro, index, district, sample):
    offset = np.asarray(metro["origins"][district])
    return RecoveryRequest(sample.raw_low.xy + offset, sample.raw_low.times,
                           hour=sample.hour, holiday=sample.holiday,
                           request_id=f"r{index}")


def _replay(metro, num_shards, rolling_updates):
    """Wall-clock one full schedule replay; returns the artifact row dict."""
    budget = metro["budget"]
    cluster, district_shard = _build_cluster(metro, num_shards)
    try:
        cluster.warm()
        # Prime each district once so one-off structure warm-up (road
        # features, reachability closure) is out of the timed region for
        # every configuration alike.
        priming = [_request(metro, -1 - d, d, metro["pool"][0])
                   for d in range(DISTRICTS)]
        assert all(r.ok for r in cluster.recover_many(priming, timeout=600.0))

        hidden = budget["hidden"]
        window = budget["update_every"]
        schedule = metro["schedule"]
        rollouts = 0
        start = time.perf_counter()
        for chunk_start in range(0, len(schedule), window):
            chunk = schedule[chunk_start:chunk_start + window]
            requests = [_request(metro, chunk_start + j, district, sample)
                        for j, (district, sample) in enumerate(chunk)]
            results = cluster.recover_many(requests, timeout=600.0)
            assert all(r.ok for r in results), [r.error for r in results if not r.ok]
            if rolling_updates and chunk_start + window < len(schedule):
                # One district's model is retrained and rolled out.  The
                # monolith can only express that as a whole-metro redeploy;
                # a sharded cluster rebuilds just the owning shard.
                shard_name = district_shard[rollouts % DISTRICTS]
                shard_network = cluster.shard(shard_name).network
                fresh = RNTrajRec(shard_network,
                                  small_model_config(hidden)).eval()
                cluster.deploy_model(shard_name, f"roll{rollouts}", fresh)
                rollouts += 1
        elapsed = time.perf_counter() - start
        stats = cluster.stats()
    finally:
        cluster.close()

    shard_latency = {
        name: {"p50_ms": s.get("latency_ms_p50", 0.0),
               "p99_ms": s.get("latency_ms_p99", 0.0)}
        for name, s in stats["shards"].items()
    }
    row = {
        "shards": num_shards,
        "rolling_updates": rolling_updates,
        "requests": len(metro["schedule"]),
        "rollouts": rollouts,
        "wall_seconds": round(elapsed, 3),
        "qps": round(len(metro["schedule"]) / elapsed, 3),
        "cache_hit_rate": round(
            stats["cluster"]["cache_hits"]
            / max(stats["cluster"]["requests"], 1), 4),
        "shed": stats["cluster"]["shed"],
        "unroutable": stats["cluster"]["unroutable"],
        "per_shard_latency": shard_latency,
        "segments_per_shard": (DISTRICTS // num_shards
                               * metro["network"].num_segments),
    }
    return row


# ---------------------------------------------------------------------------
# Scenario 1: throughput vs shard count under rolling per-district rollouts
# ---------------------------------------------------------------------------
def test_cluster_throughput_vs_shard_count(metro):
    budget = metro["budget"]
    rows = [_replay(metro, s, rolling_updates=True) for s in (1, 2, 4)]
    steady = [_replay(metro, s, rolling_updates=False) for s in (1, 4)]

    base_qps = rows[0]["qps"]
    for row in rows:
        row["scaling_vs_monolith"] = round(row["qps"] / base_qps, 3)

    print("\nCluster serving — 4-district metro, rolling per-district rollouts")
    header = (f"{'shards':>7}{'QPS':>9}{'scaling':>9}{'hit rate':>10}"
              f"{'wall s':>8}{'rollouts':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['shards']:>7}{row['qps']:>9.2f}"
              f"{row['scaling_vs_monolith']:>9.2f}{row['cache_hit_rate']:>10.2f}"
              f"{row['wall_seconds']:>8.2f}{row['rollouts']:>9}")
    print("steady state (no rollouts, unasserted): "
          + ", ".join(f"{r['shards']} shard(s) {r['qps']:.2f} QPS"
                      for r in steady))

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    artifact = {
        "benchmark": "cluster",
        "env": bench_environment(),
        "workload": {k: budget[k] for k in
                     ("requests", "trajectories", "hot", "repeat",
                      "update_every", "hidden", "block")},
        "districts": DISTRICTS,
        "district_segments": metro["network"].num_segments,
        "rows": rows,
        "steady_rows": steady,
    }

    # No request may be silently dropped in the capacity-sized runs.
    for row in rows + steady:
        assert row["shed"] == 0 and row["unroutable"] == 0
    # The headline: sharding beats the monolith on the rollout workload.
    scaling = rows[-1]["qps"] / base_qps
    artifact["scaling_4_vs_1"] = round(scaling, 3)
    with open(artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"4 shards vs monolith: {scaling:.2f}x  (floor "
          f"{budget['min_scaling']}x); wrote {artifact_path}")
    assert scaling >= budget["min_scaling"], (
        f"4-shard cluster only {scaling:.2f}x the monolith "
        f"(need >= {budget['min_scaling']}x)")


# ---------------------------------------------------------------------------
# Scenario 2: overload sheds instead of queueing unboundedly
# ---------------------------------------------------------------------------
def test_overload_sheds_instead_of_queueing(metro):
    cluster, _ = _build_cluster(metro, 4, max_inflight=2)
    burst = 48
    try:
        cluster.warm()
        pool = metro["pool"]
        prime = cluster.recover(_request(metro, -1, 0, pool[0]), timeout=600.0)
        assert prime.shard == "shard0"

        # Fire the whole burst at ONE district without waiting.  Distinct
        # traces (the request cache must not absorb the burst): admission
        # is bounded at max_inflight=2, everything beyond must shed fast.
        def burst_request(i):
            request = _request(metro, i, 0, pool[1 + i % (len(pool) - 1)])
            # Sub-meter jitter beyond the cache quantization: repeats of a
            # pool trace within the burst stay distinct cache keys.
            return RecoveryRequest(request.xy + 0.25 * (1 + i // len(pool)),
                                   request.times, hour=request.hour,
                                   holiday=request.holiday,
                                   request_id=request.request_id)

        futures = [cluster.submit(burst_request(i)) for i in range(burst)]
        stats_during = cluster.stats()
        outcomes = {"ok": 0, "shed": 0}
        for future in futures:
            try:
                future.result(timeout=600.0)
                outcomes["ok"] += 1
            except Exception as exc:
                assert "overloaded" in str(exc)
                outcomes["shed"] += 1
        stats = cluster.stats()
    finally:
        cluster.close()

    shed_rate = outcomes["shed"] / burst
    print(f"\nOverload: burst={burst} at max_inflight=2 → served "
          f"{outcomes['ok']}, shed {outcomes['shed']} "
          f"(shed rate {shed_rate:.2f})")

    # Shedding, not unbounded queueing: the in-flight gauge never exceeds
    # the admission bound, sheds are recorded and dead-lettered, and
    # everything is accounted for.
    assert outcomes["ok"] + outcomes["shed"] == burst
    assert outcomes["shed"] > 0
    assert stats_during["shards"]["shard0"]["inflight"] <= 2
    assert stats["router"]["shed_by_shard"].get("shard0", 0) == outcomes["shed"]
    assert sum(1 for letter in cluster.telemetry.dead_letters()
               if letter["reason"] == "shed") > 0

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    artifact_path = cache_dir / ARTIFACT_NAME
    if artifact_path.exists():  # annotate the scenario-1 artifact
        payload = json.loads(artifact_path.read_text())
        payload["overload"] = {
            "burst": burst, "max_inflight": 2,
            "served": outcomes["ok"], "shed": outcomes["shed"],
            "shed_rate": round(shed_rate, 3),
        }
        artifact_path.write_text(json.dumps(payload, indent=1))


# ---------------------------------------------------------------------------
# Scenario 3: zero-copy shared artifacts — ~10x |V| city, N replicas, ~1x RSS
# ---------------------------------------------------------------------------
def _mem_budget():
    env = os.environ.get
    return {
        # block=40 m on chengdu's rectangle gives ~14k segments — ~10x the
        # throughput scenario's district (block=125 → ~1.4k) and inside
        # the paper's 8.7k-35k city range.  CI smoke relaxes to ~80.
        "block": float(env("REPRO_BENCH_CLUSTER_MEM_BLOCK", 40.0)),
        "replicas": int(env("REPRO_BENCH_CLUSTER_MEM_REPLICAS", 4)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_MEM_TRAJECTORIES", 24)),
        "requests": int(env("REPRO_BENCH_CLUSTER_MEM_REQUESTS", 32)),
        # hidden=32 keeps the decode GEMMs big enough to release the GIL,
        # so N replica threads aren't serialized against one batcher.
        "hidden": int(env("REPRO_BENCH_CLUSTER_MEM_HIDDEN", 32)),
        "max_rss_ratio": float(env("REPRO_BENCH_CLUSTER_MEM_MAX_RSS_RATIO", 1.35)),
        # No-throughput-loss gate.  N replicas on one core pay the GIL
        # convoy tax for N compute threads (~10-15% here, same reason the
        # scenario-1 steady-state rows are unasserted on one core), so the
        # default relaxes there; with real cores the replicas decode in
        # parallel and must at least match the single in-memory replica.
        "min_qps_ratio": float(env(
            "REPRO_BENCH_CLUSTER_MEM_MIN_QPS_RATIO",
            1.0 if (os.cpu_count() or 1) > 1 else 0.8)),
    }


#: Runs in a subprocess: the ~10x city build (network generation, model
#: init, X_road warm-up, trajectory simulation) allocates far more than
#: the frozen artifacts occupy, and a child process keeps those transients
#: out of the parent's RSS baseline entirely.
_MEM_BUILDER = r"""
import os
from dataclasses import replace

import numpy as np

from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import small_model_config
from repro.roadnet import CityArtifacts, generate_city
from repro.trajectory.dataset import build_samples
from repro.trajectory.simulate import TrajectorySimulator

out = os.environ["REPRO_MEM_OUT"]
spec = get_spec("chengdu")
network = generate_city(replace(spec.city,
                                block=float(os.environ["REPRO_MEM_BLOCK"]),
                                minor_fraction=0.7))
model = RNTrajRec(network,
                  small_model_config(int(os.environ["REPRO_MEM_HIDDEN"]))).eval()
CityArtifacts.build(network, model=model).save(os.path.join(out, "city"))

pairs = TrajectorySimulator(network, spec.simulation).simulate(
    int(os.environ["REPRO_MEM_TRAJECTORIES"]))
pool = build_samples(pairs, network, spec.dataset)
traces = {"hours": np.array([s.hour for s in pool]),
          "holidays": np.array([s.holiday for s in pool])}
for i, sample in enumerate(pool):
    traces[f"xy{i}"] = np.asarray(sample.raw_low.xy)
    traces[f"t{i}"] = np.asarray(sample.raw_low.times)
np.savez(os.path.join(out, "traces.npz"), **traces)
print(f"builder: {network.num_segments} segments, {len(pool)} traces",
      flush=True)
"""


def test_memory_scaling_shared_artifacts(tmp_path):
    budget = _mem_budget()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env.update(REPRO_MEM_OUT=str(tmp_path),
               REPRO_MEM_BLOCK=str(budget["block"]),
               REPRO_MEM_HIDDEN=str(budget["hidden"]),
               REPRO_MEM_TRAJECTORIES=str(budget["trajectories"]))
    subprocess.run([sys.executable, "-c", _MEM_BUILDER], env=env, check=True)

    traces = np.load(tmp_path / "traces.npz")
    hours, holidays = traces["hours"], traces["holidays"]
    # Trace n-1 is reserved for per-phase priming; the timed schedule
    # cycles the rest with sub-meter jitter past the cache quantization,
    # so repeats decode for real instead of hitting the result cache.
    pool_size = max(len(hours) - 1, 1)

    def request_at(index, round_no=0):
        k = index % pool_size
        jitter = 0.25 * (index // pool_size) + 2.0 * round_no
        return RecoveryRequest(traces[f"xy{k}"] + jitter, traces[f"t{k}"],
                               hour=int(hours[k]), holiday=bool(holidays[k]),
                               request_id=f"m{round_no}.{index}")

    spec = get_spec("chengdu")
    serve_kwargs = dict(interval=spec.simulation.sample_interval,
                        beta=spec.dataset.beta,
                        max_gps_error=spec.dataset.max_gps_error,
                        max_batch_size=8, max_wait_ms=10.0, cache_capacity=16)
    prime = RecoveryRequest(traces[f"xy{pool_size}"], traces[f"t{pool_size}"],
                            hour=int(hours[-1]), holiday=bool(holidays[-1]),
                            request_id="prime")
    # The whole schedule is offered concurrently in both phases (same
    # offered load; capacity is the variable), and one executor serves
    # both so thread-stack overhead never skews a single phase's delta.
    executor = ThreadPoolExecutor(max_workers=budget["requests"])

    def replay(services):
        """Two timed rounds over the schedule (round 1 shifts every trace
        2 m, past the cache quantization, so it decodes for real); the
        faster round is the phase's wall clock, round 0's responses its
        equivalence transcript."""
        services[0].recover(prime, timeout=600.0)  # warm outside the clock
        responses, elapsed = None, float("inf")
        for round_no in (0, 1):
            start = time.perf_counter()
            futures = [executor.submit(services[i % len(services)].recover,
                                       request_at(i, round_no), 600.0)
                       for i in range(budget["requests"])]
            round_responses = [f.result() for f in futures]
            elapsed = min(elapsed, time.perf_counter() - start)
            if round_no == 0:
                responses = round_responses
        return responses, elapsed

    def rss() -> float:
        """Pinned RSS: collect garbage and hand the allocator's free pages
        back to the OS before sampling, so the phases are compared on the
        memory they actually *hold* (mmap-resident artifact pages, private
        copies, live objects) rather than on glibc's per-thread arena
        high-water marks, which retain freed decode transients
        indefinitely (production tames those with MALLOC_TRIM_THRESHOLD /
        MALLOC_ARENA_MAX; a benchmark gate must not hinge on them)."""
        gc.collect()
        try:
            import ctypes
            ctypes.CDLL("libc.so.6").malloc_trim(0)
        except Exception:
            pass  # non-glibc: arena slack stays in both phases alike
        return profile.memory_snapshot()["rss_mb"]

    closers = []
    try:
        # One-time process costs — lazy imports, numpy scratch pools,
        # thread machinery, and above all the allocator's high-water mark
        # for N replicas' transient decode state (glibc arenas never
        # shrink back) — are paid by a throwaway clone of phase 1 that is
        # torn down again BEFORE the baseline RSS sample.  What the two
        # measured phases then add on top is the *resident structures*:
        # mmap-backed pages once vs private copies per replica.
        warm_art = CityArtifacts.load(str(tmp_path / "city"), mmap=True)
        warm_reg = ModelRegistry(artifacts=warm_art)
        warm_reg.register_artifact_model("default", activate=True)
        warm_svcs = [RecoveryService(warm_reg, ServeConfig(**serve_kwargs))
                     for _ in range(budget["replicas"])]
        try:
            replay(warm_svcs)
        finally:
            for service in warm_svcs:
                service.close()
        del warm_svcs, warm_reg, warm_art

        rss0 = rss()

        # Phase 1 — the PR's serving shape: ONE mmap-loaded artifact set,
        # one registry, N replica services over it (Shard semantics).
        started = time.perf_counter()
        shared = CityArtifacts.load(str(tmp_path / "city"), mmap=True)
        registry = ModelRegistry(artifacts=shared)
        registry.register_artifact_model("default", activate=True)
        replicas = [RecoveryService(registry, ServeConfig(**serve_kwargs))
                    for _ in range(budget["replicas"])]
        closers.extend(replicas)
        shared_startup = time.perf_counter() - started
        shared_responses, shared_elapsed = replay(replicas)
        rss1 = rss()

        # Phase 2 — the pre-PR baseline unit: ONE replica over private
        # in-memory copies of the same frozen state (mmap=False), stacked
        # on top so rss2-rss1 isolates exactly one such replica.  N
        # baseline replicas would cost ~N times this delta.
        started = time.perf_counter()
        private = CityArtifacts.load(str(tmp_path / "city"), mmap=False)
        baseline_registry = ModelRegistry(artifacts=private)
        baseline_registry.register_artifact_model("default", activate=True)
        baseline = RecoveryService(baseline_registry, ServeConfig(**serve_kwargs))
        closers.append(baseline)
        baseline_startup = time.perf_counter() - started
        baseline_responses, baseline_elapsed = replay([baseline])
        rss2 = rss()
    finally:
        for service in closers:
            service.close()
        executor.shutdown(wait=False)

    # Bit-identity: the shared mmap stack and the private copy stack must
    # produce exactly the same recoveries for the whole schedule.
    for ours, theirs in zip(shared_responses, baseline_responses):
        assert np.array_equal(ours.trajectory.segments, theirs.trajectory.segments)
        assert np.array_equal(np.asarray(ours.trajectory.ratios),
                              np.asarray(theirs.trajectory.ratios))
        assert np.array_equal(ours.trajectory.times, theirs.trajectory.times)

    shared_delta = max(rss1 - rss0, 0.0)
    baseline_delta = max(rss2 - rss1, 1e-6)
    rss_ratio = shared_delta / baseline_delta
    shared_qps = budget["requests"] / shared_elapsed
    baseline_qps = budget["requests"] / baseline_elapsed
    qps_ratio = shared_qps / baseline_qps
    segments = registry.network.num_segments

    print(f"\nMemory scaling — {segments} segments, "
          f"{budget['replicas']} shared replicas vs 1 in-memory replica")
    print(f"  shared   : +{shared_delta:.1f} MiB, {shared_qps:.2f} QPS, "
          f"startup {shared_startup:.2f}s (mmap)")
    print(f"  in-memory: +{baseline_delta:.1f} MiB, {baseline_qps:.2f} QPS, "
          f"startup {baseline_startup:.2f}s (private copies)")
    print(f"  RSS ratio {rss_ratio:.2f}x (gate <= {budget['max_rss_ratio']}x; "
          f"naive {budget['replicas']}x replication ~"
          f"{budget['replicas'] * baseline_delta:.0f} MiB), "
          f"QPS ratio {qps_ratio:.2f}x (gate >= {budget['min_qps_ratio']}x)")

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    payload = (json.loads(artifact_path.read_text())
               if artifact_path.exists() else {"benchmark": "cluster"})
    payload["memory"] = {
        "city_segments": segments,
        "replicas": budget["replicas"],
        "requests": budget["requests"],
        "workload": {k: budget[k] for k in ("block", "trajectories", "hidden")},
        "shared": {"rss_delta_mb": round(shared_delta, 1),
                   "qps": round(shared_qps, 3),
                   "startup_seconds": round(shared_startup, 3)},
        "inmemory": {"rss_delta_mb": round(baseline_delta, 1),
                     "qps": round(baseline_qps, 3),
                     "startup_seconds": round(baseline_startup, 3)},
        "naive_replication_rss_mb": round(
            budget["replicas"] * baseline_delta, 1),
        "rss_ratio": round(rss_ratio, 3),
        "qps_ratio": round(qps_ratio, 3),
        "max_rss_ratio": budget["max_rss_ratio"],
        "min_qps_ratio": budget["min_qps_ratio"],
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": True,
        "content_digest": shared.content_digest,
    }
    artifact_path.write_text(json.dumps(payload, indent=1))
    print(f"wrote memory section to {artifact_path}")

    assert rss_ratio <= budget["max_rss_ratio"], (
        f"{budget['replicas']} shared replicas cost {rss_ratio:.2f}x one "
        f"in-memory replica (need <= {budget['max_rss_ratio']}x)")
    assert qps_ratio >= budget["min_qps_ratio"], (
        f"shared replicas only {qps_ratio:.2f}x the in-memory replica's "
        f"throughput (need >= {budget['min_qps_ratio']}x)")


# ---------------------------------------------------------------------------
# Scenario 4: process workers vs in-process replica threads (the GIL wall)
# ---------------------------------------------------------------------------
def _proc_budget():
    env = os.environ.get
    cores = os.cpu_count() or 1
    # The whole point of the process backend is multi-core decode, so the
    # throughput floor scales with the hardware: >= 2x at 4 workers on a
    # >= 4-core box, modest parallelism on 2 cores, and bare parity-minus-
    # IPC-tax (the scenario-1 steady-state caveat in reverse) on one core.
    default_qps = 2.0 if cores >= 4 else (1.2 if cores >= 2 else 0.9)
    return {
        "workers": int(env("REPRO_BENCH_CLUSTER_PROC_WORKERS", 4)),
        "requests": int(env("REPRO_BENCH_CLUSTER_PROC_REQUESTS", 48)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_PROC_TRAJECTORIES", 24)),
        # Same ~10x-|V| city as the memory scenario: at block=125 the
        # artifacts are a couple of MiB and the sharing gate would be
        # measuring interpreter noise.
        "block": float(env("REPRO_BENCH_CLUSTER_PROC_BLOCK", 40.0)),
        "hidden": int(env("REPRO_BENCH_CLUSTER_PROC_HIDDEN", 32)),
        "min_qps_ratio": float(env("REPRO_BENCH_CLUSTER_PROC_MIN_QPS_RATIO",
                                   default_qps)),
        "max_marginal_ratio": float(
            env("REPRO_BENCH_CLUSTER_PROC_MAX_MARGINAL_RATIO", 0.6)),
    }


def test_process_backend_scaling(tmp_path):
    """N forked workers over ONE mmap'd artifact set vs N in-process
    replica threads: bit-identical responses, aggregate QPS >=
    ``min_qps_ratio`` x inproc (hardware-scaled — the 1-core dev box can
    only assert the IPC tax is small), and a marginal memory gate: each
    worker past the first costs <= ``max_marginal_ratio`` x what a
    PRIVATE-loading (``mmap=False``) single worker weighs.  Fork-dirtied
    interpreter pages (~15-25 MiB/worker of refcount writes) make any
    total-tree-vs-one-worker ratio fail regardless of artifact sharing,
    so the gate targets the one quantity sharing actually controls: the
    incremental worker.  With mmap'd artifacts it sits around 0.4x the
    private replica; if loading regressed to private copies it would be
    ~1.0x."""
    budget = _proc_budget()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env.update(REPRO_MEM_OUT=str(tmp_path),
               REPRO_MEM_BLOCK=str(budget["block"]),
               REPRO_MEM_HIDDEN=str(budget["hidden"]),
               REPRO_MEM_TRAJECTORIES=str(budget["trajectories"]))
    subprocess.run([sys.executable, "-c", _MEM_BUILDER], env=env, check=True)

    traces = np.load(tmp_path / "traces.npz")
    hours, holidays = traces["hours"], traces["holidays"]
    pool_size = max(len(hours) - 1, 1)

    def request_at(index, round_no=0):
        k = index % pool_size
        # Repeats are jittered by WHOLE meters: the sub-graph generator
        # memoizes per point at 1 m quantization, so a sub-meter twin
        # reuses whichever stack-mate's exact-coordinate sub-graph seeded
        # the bucket — replica-shared on inproc, worker-private on
        # process — and the transcripts drift ~1e-5 for cache-topology
        # reasons, not IPC ones.  Integer shifts always land in fresh
        # buckets, so every backend computes every sub-graph exactly and
        # bit-identity is a statement about the wire, as intended.  The
        # odd 3 m round stride keeps round 1's keys disjoint from every
        # round-0 repeat (even strides) — round 1 must decode, not hit
        # the result cache.
        jitter = 2.0 * (index // pool_size) + 3.0 * round_no
        return RecoveryRequest(traces[f"xy{k}"] + jitter, traces[f"t{k}"],
                               hour=int(hours[k]), holiday=bool(holidays[k]),
                               request_id=f"p{round_no}.{index}")

    spec = get_spec("chengdu")
    serve = dict(interval=spec.simulation.sample_interval,
                 beta=spec.dataset.beta,
                 max_gps_error=spec.dataset.max_gps_error,
                 max_batch_size=8, max_wait_ms=10.0, cache_capacity=16)

    def build_shard(backend, replicas):
        shard_spec = ShardSpec(name="city", bbox=(0.0, 0.0, 1.0, 1.0),
                               replicas=replicas, backend=backend,
                               max_inflight=max(budget["requests"], 64))
        return Shard(shard_spec, serve_overrides=serve,
                     artifact_dir=str(tmp_path))

    def replay(shard):
        """Two timed offered-load rounds (round 1 shifts traces past the
        cache quantization); min wall clock, round-0 transcript."""
        shard.submit(request_at(0)).result(timeout=600.0)  # warm the clock out
        responses, elapsed = None, float("inf")
        for round_no in (0, 1):
            start = time.perf_counter()
            futures = [shard.submit(request_at(i, round_no))
                       for i in range(budget["requests"])]
            round_responses = [f.result(timeout=600.0) for f in futures]
            elapsed = min(elapsed, time.perf_counter() - start)
            if round_no == 0:
                responses = round_responses
        return responses, elapsed

    def worker_tree_mb(pids):
        """(MiB, "pss"|"rss") across the worker pids — PSS preferred so
        mmap/fork-shared pages are charged once across the tree."""
        pss = [profile.proc_pss_mb(pid) for pid in pids]
        if all(p is not None for p in pss):
            return sum(pss), "pss"
        return sum(profile.proc_rss_mb(pid) for pid in pids), "rss"

    workers = budget["workers"]
    inproc = build_shard("inproc", workers)
    try:
        inproc.warm()
        inproc_responses, inproc_elapsed = replay(inproc)
        assert inproc.artifact_info()["source"] == "loaded"
    finally:
        inproc.close()

    proc = build_shard("process", workers)
    try:
        proc.warm()
        assert proc.artifact_info()["source"] == "loaded"
        proc_responses, proc_elapsed = replay(proc)
        tree_n_mb, metric = worker_tree_mb(proc.worker_pids())
        stats = proc.stats()
    finally:
        proc.close()

    solo = build_shard("process", 1)
    try:
        solo.warm()
        _, solo_elapsed = replay(solo)
        tree_1_mb, _ = worker_tree_mb(solo.worker_pids())
    finally:
        solo.close()

    # Memory baseline: ONE worker that loads the artifacts PRIVATELY
    # (mmap=False — every array materialized in its own heap).  This is
    # what each replica would cost without sharing, so it denominates
    # the marginal-cost gate below.
    def private_factory():
        artifacts = CityArtifacts.load(str(tmp_path / "city"), mmap=False)
        registry = ModelRegistry(artifacts=artifacts)
        registry.register_artifact_model("default", activate=True)
        return RecoveryService(registry, ServeConfig(**serve), shard="city")

    private_pool = WorkerPool(private_factory, workers=1, label="city-priv")
    try:
        private_pool.start()
        for i in range(budget["requests"]):
            private_pool.submit_to(0, request_at(i)).result(timeout=600.0)
        private_single_mb, _ = worker_tree_mb(private_pool.pids())
    finally:
        private_pool.close(drain=False)

    # Bit-identity across backends: IPC framing must be lossless and the
    # worker stack must decode exactly what the in-process stack decodes.
    for ours, theirs in zip(proc_responses, inproc_responses):
        assert np.array_equal(ours.trajectory.segments,
                              theirs.trajectory.segments)
        assert np.array_equal(np.asarray(ours.trajectory.ratios),
                              np.asarray(theirs.trajectory.ratios))
        assert np.array_equal(ours.trajectory.times, theirs.trajectory.times)
    assert stats["crashes"] == 0 and not stats["degraded"]

    inproc_qps = budget["requests"] / inproc_elapsed
    proc_qps = budget["requests"] / proc_elapsed
    solo_qps = budget["requests"] / solo_elapsed
    qps_ratio = proc_qps / inproc_qps
    mem_ratio = tree_n_mb / max(tree_1_mb, 1e-6)
    marginal_worker_mb = (tree_n_mb - tree_1_mb) / max(workers - 1, 1)
    marginal_ratio = marginal_worker_mb / max(private_single_mb, 1e-6)

    # IPC codec microbench: the raw struct+ndarray hot-path frames vs
    # pickling the same dataclasses (what a naive pipe protocol would do).
    import pickle

    probe_request = request_at(0)
    probe_response = proc_responses[0]
    raw_request = encode_request(1, probe_request)
    raw_response = encode_response(1, probe_response)

    def per_op_us(fn, repeats=2000):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return 1e6 * (time.perf_counter() - start) / repeats

    ipc = {
        "request_bytes_raw": len(raw_request),
        "request_bytes_pickle": len(pickle.dumps(probe_request, protocol=5)),
        "response_bytes_raw": len(raw_response),
        "response_bytes_pickle": len(pickle.dumps(probe_response, protocol=5)),
        "request_roundtrip_us_raw": round(per_op_us(
            lambda: decode_request(encode_request(1, probe_request))), 3),
        "request_roundtrip_us_pickle": round(per_op_us(
            lambda: pickle.loads(pickle.dumps(probe_request, protocol=5))), 3),
        "response_roundtrip_us_raw": round(per_op_us(
            lambda: decode_response(encode_response(1, probe_response),
                                    "city", 0.0)), 3),
        "response_roundtrip_us_pickle": round(per_op_us(
            lambda: pickle.loads(pickle.dumps(probe_response, protocol=5))), 3),
    }

    cores = os.cpu_count() or 1
    print(f"\nProcess backend — {workers} workers on {cores} core(s), "
          f"{budget['requests']} offered requests")
    print(f"  inproc {workers} threads : {inproc_qps:.2f} QPS")
    print(f"  process {workers} workers: {proc_qps:.2f} QPS "
          f"({qps_ratio:.2f}x, gate >= {budget['min_qps_ratio']}x)")
    print(f"  process 1 worker : {solo_qps:.2f} QPS")
    print(f"  worker tree {metric}: {tree_n_mb:.1f} MiB ({workers} workers) "
          f"vs {tree_1_mb:.1f} MiB (1 mmap) vs {private_single_mb:.1f} MiB "
          f"(1 private)")
    print(f"  marginal worker   : {marginal_worker_mb:.1f} MiB = "
          f"{marginal_ratio:.2f}x a private replica "
          f"(gate <= {budget['max_marginal_ratio']}x)")
    print(f"  ipc: request {ipc['request_roundtrip_us_raw']}us raw vs "
          f"{ipc['request_roundtrip_us_pickle']}us pickle; response "
          f"{ipc['response_roundtrip_us_raw']}us raw vs "
          f"{ipc['response_roundtrip_us_pickle']}us pickle")

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    payload = (json.loads(artifact_path.read_text())
               if artifact_path.exists() else {"benchmark": "cluster"})
    payload["env"] = bench_environment()
    payload["process_backend"] = {
        "workers": workers,
        "requests": budget["requests"],
        "workload": {k: budget[k] for k in ("block", "trajectories", "hidden")},
        "inproc_qps": round(inproc_qps, 3),
        "process_qps": round(proc_qps, 3),
        "process_solo_qps": round(solo_qps, 3),
        "qps_ratio": round(qps_ratio, 3),
        "min_qps_ratio": budget["min_qps_ratio"],
        "memory_metric": metric,
        "worker_tree_mb": round(tree_n_mb, 1),
        "single_worker_mb": round(tree_1_mb, 1),
        "private_single_mb": round(private_single_mb, 1),
        "naive_replication_mb": round(workers * private_single_mb, 1),
        "memory_ratio_vs_one_worker": round(mem_ratio, 3),
        "marginal_worker_mb": round(marginal_worker_mb, 1),
        "marginal_ratio_vs_private": round(marginal_ratio, 3),
        "max_marginal_ratio": budget["max_marginal_ratio"],
        "cpu_count": cores,
        "bit_identical": True,
    }
    payload["ipc"] = ipc
    artifact_path.write_text(json.dumps(payload, indent=1))
    print(f"wrote process-backend section to {artifact_path}")

    assert qps_ratio >= budget["min_qps_ratio"], (
        f"process backend only {qps_ratio:.2f}x the inproc replicas "
        f"(need >= {budget['min_qps_ratio']}x on {cores} core(s))")
    if workers > 1:
        assert marginal_ratio <= budget["max_marginal_ratio"], (
            f"each extra worker costs {marginal_worker_mb:.1f} MiB {metric} "
            f"= {marginal_ratio:.2f}x a private-loading replica "
            f"({private_single_mb:.1f} MiB; need <= "
            f"{budget['max_marginal_ratio']}x — mmap'd artifacts should "
            f"make additional workers far cheaper than private copies)")
