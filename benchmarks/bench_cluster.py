"""Cluster benchmark: sharded per-city serving vs a monolithic deployment.

The scenario is the production shape ``repro.cluster`` exists for: one
metro area of ``DISTRICTS`` road districts, sustained mixed traffic with
popular-route repeats, and **rolling per-district model rollouts** (every
``UPDATE_EVERY`` requests one district gets a freshly built model, round
robin).  The same request + rollout schedule is replayed against

* ``shards=1`` — the monolithic baseline: ONE recovery service over the
  merged metro network (``repro.roadnet.merge_networks``).  A district
  rollout means redeploying the whole-metro model: model construction and
  road-feature re-warm scale with the full |V|, and — because result-cache
  keys fold in the model generation — every district's cache is
  invalidated at once;
* ``shards=2`` / ``shards=4`` — geographic sharding: each rollout
  rebuilds only the owning shard's model and only that shard's cache goes
  cold; siblings keep serving hot.

Aggregate throughput at 4 shards must be ≥ ``REPRO_BENCH_CLUSTER_MIN_SCALING``
(default 2.5) times the monolith.  A second scenario drives one shard past
its admission bound and asserts the cluster **sheds** (429-style
``ShardOverloaded``) instead of queueing unboundedly.  Results — including
per-shard p50/p99 and the shed rate — are written to ``BENCH_cluster.json``
in the shared cache directory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q -s

Budget knobs (env): ``REPRO_BENCH_CLUSTER_REQUESTS`` (96),
``_TRAJECTORIES`` (120), ``_HOT`` (3), ``_REPEAT`` (0.95),
``_UPDATE_EVERY`` (8), ``_HIDDEN`` (32), ``_MIN_SCALING`` (2.5).

Note on hardware: on a multi-core box sharding *also* wins steady-state
wall clock (each shard decodes on its own scheduler thread); the rollout
scenario above is the part that holds even on one core, which is why it
is the asserted headline.  The steady-state rows are reported unasserted.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import RecoveryCluster, ShardMap, ShardSpec
from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import small_model_config
from repro.roadnet import generate_city, merge_networks
from repro.serve import RecoveryRequest
from repro.trajectory.dataset import build_samples
from repro.trajectory.simulate import TrajectorySimulator

ARTIFACT_NAME = "BENCH_cluster.json"
DISTRICTS = 4
GAP = 700.0      # empty corridor between districts (> 2x routing margin)
MARGIN = 60.0


def _budget():
    env = os.environ.get
    return {
        "requests": int(env("REPRO_BENCH_CLUSTER_REQUESTS", 96)),
        "trajectories": int(env("REPRO_BENCH_CLUSTER_TRAJECTORIES", 48)),
        "hot": int(env("REPRO_BENCH_CLUSTER_HOT", 3)),
        "repeat": float(env("REPRO_BENCH_CLUSTER_REPEAT", 0.95)),
        "update_every": int(env("REPRO_BENCH_CLUSTER_UPDATE_EVERY", 8)),
        "hidden": int(env("REPRO_BENCH_CLUSTER_HIDDEN", 32)),
        # District road density: the paper's cities run 8.7k-35k segments;
        # block=125 m gives ~1.4k per district (~5.7k merged), enough for
        # the |V|-dependent deploy costs to behave like production instead
        # of like a toy grid.  CI smoke can relax to 250.
        "block": float(env("REPRO_BENCH_CLUSTER_BLOCK", 125.0)),
        "min_scaling": float(env("REPRO_BENCH_CLUSTER_MIN_SCALING", 2.5)),
    }


# ---------------------------------------------------------------------------
# Metro fixture: district networks, origins, request schedule
# ---------------------------------------------------------------------------
def _district_city(budget):
    """The district recipe: chengdu's rectangle at benchmark density."""
    base = get_spec("chengdu")
    return replace(base.city, block=budget["block"], minor_fraction=0.7)


def _district_layout(network):
    """(origins, bbox_of) derived from the generated network's ACTUAL
    bounds — generate_city rounds the extent up to a multiple of the
    block size, so the nominal city rectangle under-covers for block
    sizes that don't divide it."""
    x0, y0, x1, y1 = network.bounds()
    dx, dy = (x1 - x0) + GAP, (y1 - y0) + GAP
    origins = [(0.0, 0.0), (dx, 0.0), (0.0, dy), (dx, dy)][:DISTRICTS]

    def bbox_of(origin):
        ox, oy = origin
        return (ox + x0 - MARGIN, oy + y0 - MARGIN,
                ox + x1 + MARGIN, oy + y1 + MARGIN)

    return origins, bbox_of


@pytest.fixture(scope="module")
def metro():
    budget = _budget()
    base = get_spec("chengdu")
    network = generate_city(_district_city(budget))
    simulator = TrajectorySimulator(network, base.simulation)
    pairs = simulator.simulate(budget["trajectories"])
    pool = build_samples(pairs, network, base.dataset)
    if len(pool) < budget["hot"] + 2:
        raise RuntimeError("trajectory budget too small for the hot set")
    origins, bbox_of = _district_layout(network)

    # The deterministic request schedule: round-robin districts, each draw
    # either a popular ("hot") trace or a cold one, translated into the
    # district's region of the global frame.
    rng = np.random.default_rng(7)
    schedule = []
    cold_cursor = 0
    for i in range(budget["requests"]):
        district = i % DISTRICTS
        if rng.random() < budget["repeat"]:
            sample = pool[int(rng.integers(budget["hot"]))]
        else:
            sample = pool[budget["hot"] + cold_cursor % (len(pool) - budget["hot"])]
            cold_cursor += 1
        schedule.append((district, sample))
    return {"network": network, "pool": pool, "origins": origins,
            "bbox_of": bbox_of, "schedule": schedule, "budget": budget}


def _build_cluster(metro, num_shards, max_inflight=64):
    """A cluster whose shards each own DISTRICTS/num_shards districts;
    shards=1 is the monolith over the merged metro network."""
    base_network, origins = metro["network"], metro["origins"]
    per_shard = DISTRICTS // num_shards
    groups = [list(range(s * per_shard, (s + 1) * per_shard))
              for s in range(num_shards)]

    specs, networks, district_shard = [], {}, {}
    spec_cfg = get_spec("chengdu")
    serve = {
        # Ingest must match the dataset the traces come from (the shards
        # have dataset=None because their networks are merged districts).
        "interval": spec_cfg.simulation.sample_interval,
        "beta": spec_cfg.dataset.beta,
        "max_gps_error": spec_cfg.dataset.max_gps_error,
        "max_batch_size": 16,
        "max_wait_ms": 25.0,
        "cache_capacity": 2048,
    }
    for shard_index, members in enumerate(groups):
        name = f"shard{shard_index}"
        shard_origin = origins[members[0]]
        local_offsets = [(origins[m][0] - shard_origin[0],
                          origins[m][1] - shard_origin[1]) for m in members]
        networks[name] = merge_networks([base_network] * len(members),
                                        local_offsets)
        boxes = [metro["bbox_of"](origins[m]) for m in members]
        bbox = (min(b[0] for b in boxes), min(b[1] for b in boxes),
                max(b[2] for b in boxes), max(b[3] for b in boxes))
        specs.append(ShardSpec(name=name, origin=shard_origin, bbox=bbox,
                               max_inflight=max_inflight))
        for member in members:
            district_shard[member] = name

    budget = metro["budget"]
    cluster = RecoveryCluster(
        ShardMap(shards=tuple(specs), cell_size=250.0, serve=serve),
        model_factory=lambda spec, network: RNTrajRec(
            network, small_model_config(budget["hidden"])).eval(),
        network_factory=lambda spec: networks[spec.name],
    )
    return cluster, district_shard


def _request(metro, index, district, sample):
    offset = np.asarray(metro["origins"][district])
    return RecoveryRequest(sample.raw_low.xy + offset, sample.raw_low.times,
                           hour=sample.hour, holiday=sample.holiday,
                           request_id=f"r{index}")


def _replay(metro, num_shards, rolling_updates):
    """Wall-clock one full schedule replay; returns the artifact row dict."""
    budget = metro["budget"]
    cluster, district_shard = _build_cluster(metro, num_shards)
    try:
        cluster.warm()
        # Prime each district once so one-off structure warm-up (road
        # features, reachability closure) is out of the timed region for
        # every configuration alike.
        priming = [_request(metro, -1 - d, d, metro["pool"][0])
                   for d in range(DISTRICTS)]
        assert all(r.ok for r in cluster.recover_many(priming, timeout=600.0))

        hidden = budget["hidden"]
        window = budget["update_every"]
        schedule = metro["schedule"]
        rollouts = 0
        start = time.perf_counter()
        for chunk_start in range(0, len(schedule), window):
            chunk = schedule[chunk_start:chunk_start + window]
            requests = [_request(metro, chunk_start + j, district, sample)
                        for j, (district, sample) in enumerate(chunk)]
            results = cluster.recover_many(requests, timeout=600.0)
            assert all(r.ok for r in results), [r.error for r in results if not r.ok]
            if rolling_updates and chunk_start + window < len(schedule):
                # One district's model is retrained and rolled out.  The
                # monolith can only express that as a whole-metro redeploy;
                # a sharded cluster rebuilds just the owning shard.
                shard_name = district_shard[rollouts % DISTRICTS]
                shard_network = cluster.shard(shard_name).network
                fresh = RNTrajRec(shard_network,
                                  small_model_config(hidden)).eval()
                cluster.deploy_model(shard_name, f"roll{rollouts}", fresh)
                rollouts += 1
        elapsed = time.perf_counter() - start
        stats = cluster.stats()
    finally:
        cluster.close()

    shard_latency = {
        name: {"p50_ms": s.get("latency_ms_p50", 0.0),
               "p99_ms": s.get("latency_ms_p99", 0.0)}
        for name, s in stats["shards"].items()
    }
    row = {
        "shards": num_shards,
        "rolling_updates": rolling_updates,
        "requests": len(metro["schedule"]),
        "rollouts": rollouts,
        "wall_seconds": round(elapsed, 3),
        "qps": round(len(metro["schedule"]) / elapsed, 3),
        "cache_hit_rate": round(
            stats["cluster"]["cache_hits"]
            / max(stats["cluster"]["requests"], 1), 4),
        "shed": stats["cluster"]["shed"],
        "unroutable": stats["cluster"]["unroutable"],
        "per_shard_latency": shard_latency,
        "segments_per_shard": (DISTRICTS // num_shards
                               * metro["network"].num_segments),
    }
    return row


# ---------------------------------------------------------------------------
# Scenario 1: throughput vs shard count under rolling per-district rollouts
# ---------------------------------------------------------------------------
def test_cluster_throughput_vs_shard_count(metro):
    budget = metro["budget"]
    rows = [_replay(metro, s, rolling_updates=True) for s in (1, 2, 4)]
    steady = [_replay(metro, s, rolling_updates=False) for s in (1, 4)]

    base_qps = rows[0]["qps"]
    for row in rows:
        row["scaling_vs_monolith"] = round(row["qps"] / base_qps, 3)

    print("\nCluster serving — 4-district metro, rolling per-district rollouts")
    header = (f"{'shards':>7}{'QPS':>9}{'scaling':>9}{'hit rate':>10}"
              f"{'wall s':>8}{'rollouts':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['shards']:>7}{row['qps']:>9.2f}"
              f"{row['scaling_vs_monolith']:>9.2f}{row['cache_hit_rate']:>10.2f}"
              f"{row['wall_seconds']:>8.2f}{row['rollouts']:>9}")
    print("steady state (no rollouts, unasserted): "
          + ", ".join(f"{r['shards']} shard(s) {r['qps']:.2f} QPS"
                      for r in steady))

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = cache_dir / ARTIFACT_NAME
    artifact = {
        "benchmark": "cluster",
        "workload": {k: budget[k] for k in
                     ("requests", "trajectories", "hot", "repeat",
                      "update_every", "hidden", "block")},
        "districts": DISTRICTS,
        "district_segments": metro["network"].num_segments,
        "rows": rows,
        "steady_rows": steady,
    }

    # No request may be silently dropped in the capacity-sized runs.
    for row in rows + steady:
        assert row["shed"] == 0 and row["unroutable"] == 0
    # The headline: sharding beats the monolith on the rollout workload.
    scaling = rows[-1]["qps"] / base_qps
    artifact["scaling_4_vs_1"] = round(scaling, 3)
    with open(artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"4 shards vs monolith: {scaling:.2f}x  (floor "
          f"{budget['min_scaling']}x); wrote {artifact_path}")
    assert scaling >= budget["min_scaling"], (
        f"4-shard cluster only {scaling:.2f}x the monolith "
        f"(need >= {budget['min_scaling']}x)")


# ---------------------------------------------------------------------------
# Scenario 2: overload sheds instead of queueing unboundedly
# ---------------------------------------------------------------------------
def test_overload_sheds_instead_of_queueing(metro):
    cluster, _ = _build_cluster(metro, 4, max_inflight=2)
    burst = 48
    try:
        cluster.warm()
        pool = metro["pool"]
        prime = cluster.recover(_request(metro, -1, 0, pool[0]), timeout=600.0)
        assert prime.shard == "shard0"

        # Fire the whole burst at ONE district without waiting.  Distinct
        # traces (the request cache must not absorb the burst): admission
        # is bounded at max_inflight=2, everything beyond must shed fast.
        def burst_request(i):
            request = _request(metro, i, 0, pool[1 + i % (len(pool) - 1)])
            # Sub-meter jitter beyond the cache quantization: repeats of a
            # pool trace within the burst stay distinct cache keys.
            return RecoveryRequest(request.xy + 0.25 * (1 + i // len(pool)),
                                   request.times, hour=request.hour,
                                   holiday=request.holiday,
                                   request_id=request.request_id)

        futures = [cluster.submit(burst_request(i)) for i in range(burst)]
        stats_during = cluster.stats()
        outcomes = {"ok": 0, "shed": 0}
        for future in futures:
            try:
                future.result(timeout=600.0)
                outcomes["ok"] += 1
            except Exception as exc:
                assert "overloaded" in str(exc)
                outcomes["shed"] += 1
        stats = cluster.stats()
    finally:
        cluster.close()

    shed_rate = outcomes["shed"] / burst
    print(f"\nOverload: burst={burst} at max_inflight=2 → served "
          f"{outcomes['ok']}, shed {outcomes['shed']} "
          f"(shed rate {shed_rate:.2f})")

    # Shedding, not unbounded queueing: the in-flight gauge never exceeds
    # the admission bound, sheds are recorded and dead-lettered, and
    # everything is accounted for.
    assert outcomes["ok"] + outcomes["shed"] == burst
    assert outcomes["shed"] > 0
    assert stats_during["shards"]["shard0"]["inflight"] <= 2
    assert stats["router"]["shed_by_shard"].get("shard0", 0) == outcomes["shed"]
    assert sum(1 for letter in cluster.telemetry.dead_letters()
               if letter["reason"] == "shed") > 0

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    artifact_path = cache_dir / ARTIFACT_NAME
    if artifact_path.exists():  # annotate the scenario-1 artifact
        payload = json.loads(artifact_path.read_text())
        payload["overload"] = {
            "burst": burst, "max_inflight": 2,
            "served": outcomes["ok"], "shed": outcomes["shed"],
            "shed_rate": round(shed_rate, 3),
        }
        artifact_path.write_text(json.dumps(payload, indent=1))
