"""Fig. 6 — efficiency study on Chengdu ×8.

The paper plots accuracy vs inference time per trajectory, annotated with
parameter counts, for every baseline plus RNTrajRec at N ∈ {1, 2} with and
without GRL.  Inference times and parameter counts come from the cached
Table III runs plus dedicated RNTrajRec-variant runs; the pytest benchmark
times each model family's forward inference directly.
"""

import numpy as np
import pytest

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.baselines import build_baseline
from repro.experiments import bench_budget, get_dataset, run_experiment
from repro.trajectory import make_batch

BASELINE_METHODS = [
    "linear_hmm",
    "dhtr_hmm",
    "t2vec",
    "transformer",
    "mtrajrec",
    "t3s",
    "gts",
    "neutraj",
]


def _variant_config(n_layers: int, use_grl: bool) -> RNTrajRecConfig:
    budget = bench_budget()
    return RNTrajRecConfig(
        hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
        receptive_delta=300.0, max_subgraph_nodes=32,
        num_gpsformer_layers=n_layers, use_grl=use_grl,
        use_graph_loss=use_grl,  # GCL requires the graph path
    )


def test_fig6_efficiency_table(benchmark, budget):
    rows = []
    for method in BASELINE_METHODS:
        result = run_experiment(dataset="chengdu", method=method, keep_every=8)
        rows.append((method, result.metrics["Accuracy"],
                     result.inference_ms_per_trajectory, result.num_parameters))

    reduced = max(120, budget["trajectories"] // 2)
    for n_layers, use_grl, label in [
        (1, False, "rntrajrec* (N=1)"),
        (2, False, "rntrajrec* (N=2)"),
        (1, True, "rntrajrec (N=1)"),
        (2, True, "rntrajrec (N=2)"),
    ]:
        result = run_experiment(
            dataset="chengdu", method="rntrajrec", keep_every=8,
            trajectories=reduced, model_config=_variant_config(n_layers, use_grl),
            variant_tag=label,
        )
        rows.append((label, result.metrics["Accuracy"],
                     result.inference_ms_per_trajectory, result.num_parameters))

    print("\nFig. 6 — efficiency study, Chengdu (ε_τ = ε_ρ × 8)")
    print(f"{'Method':<22}{'ACC':>8}{'ms/traj':>10}{'#Params':>10}")
    print("-" * 50)
    for name, acc, ms, params in rows:
        print(f"{name:<22}{acc:>8.3f}{ms:>10.1f}{params:>10}")

    by_name = dict((r[0], r) for r in rows)
    # Deeper GPSFormer has more parameters (paper: N=2 > N=1).
    assert by_name["rntrajrec (N=2)"][3] > by_name["rntrajrec (N=1)"][3]
    # GRL adds parameters over the plain-transformer variant.
    assert by_name["rntrajrec (N=2)"][3] > by_name["rntrajrec* (N=2)"][3]
    # Linear+HMM has zero learnable parameters.
    assert by_name["linear_hmm"][3] == 0

    # Benchmark: RNTrajRec (N=2) greedy inference on a single batch.
    data = get_dataset("chengdu", budget["trajectories"], 8)
    model = RNTrajRec(data.network, _variant_config(2, True))
    model.eval()
    batch = make_batch(data.test[:8])
    benchmark(lambda: model.recover(batch))


@pytest.mark.parametrize("method", ["mtrajrec", "transformer", "gts"])
def test_fig6_baseline_inference_speed(method, benchmark, budget):
    """Per-method inference timing (the x-axis of Fig. 6)."""
    data = get_dataset("chengdu", budget["trajectories"], 8)
    config = RNTrajRecConfig(hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    model = build_baseline(method, data.network, config)
    model.eval()
    batch = make_batch(data.test[:8])
    benchmark(lambda: model.recover(batch))
