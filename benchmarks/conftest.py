"""Shared fixtures for the per-table/figure benchmarks.

Heavy work (training every method on every dataset) goes through
``repro.experiments.run_experiment`` which caches results on disk under
``benchmarks/_cache``; re-running a benchmark is then instant.  The
``benchmark`` fixture times a *representative hot path* for each
experiment (inference, a training step, HMM matching) so
``pytest benchmarks/ --benchmark-only`` produces meaningful timing tables
alongside the printed paper tables.
"""

import os
import sys
from pathlib import Path

import pytest

# Keep every bench run reproducible regardless of invocation directory.
REPO_ROOT = Path(__file__).resolve().parent.parent
os.environ.setdefault("REPRO_CACHE_DIR", str(REPO_ROOT / "benchmarks" / "_cache"))


@pytest.fixture(scope="session")
def budget():
    from repro.experiments import bench_budget

    return bench_budget()
