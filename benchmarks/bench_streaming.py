"""Streaming-recovery benchmark: incremental appends vs re-decode-from-scratch.

Simulates long driving sessions on the Chengdu network and feeds each one
fix-by-fix through :class:`repro.stream.StreamingRecoveryService`, timing
every append.  The baseline re-runs the one-shot recovery on the full
prefix after each new fix — what a session-less server would have to do.
Two gates:

* **speedup** — mean per-append latency must beat the from-scratch
  baseline by ``REPRO_BENCH_STREAM_MIN_SPEEDUP`` (default 3x, the
  acceptance bar at session length >= 32; CI smoke-runs with a relaxed
  floor because shared runners are noisy);
* **exactness** — ``finalize()`` after all appends must reproduce the
  one-shot recovery of the same fixes bit-for-bit (hard assert at every
  budget).

Writes ``BENCH_streaming.json`` into the shared benchmark cache directory
(``REPRO_CACHE_DIR``, default ``benchmarks/_cache``) next to the other
artifacts.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -q -s

Budget knobs: ``REPRO_BENCH_STREAM_SESSIONS`` (default 3),
``REPRO_BENCH_STREAM_LENGTH`` (default 32 fixes per session),
``REPRO_BENCH_STREAM_KEEP_EVERY`` (default 8, the ε_τ/ε_ρ ratio),
``REPRO_BENCH_STREAM_HORIZON`` (default 8 grid steps).
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.experiments import bench_budget, bench_environment, small_model_config
from repro.roadnet import generate_city
from repro.serve import RecoveryRequest, RecoveryService, ServeConfig
from repro.stream import StreamConfig, StreamingRecoveryService
from repro.trajectory import MatchedTrajectory, downsample_raw
from repro.trajectory.simulate import TrajectorySimulator

ARTIFACT_NAME = "BENCH_streaming.json"


def _stream_budget() -> dict:
    return {
        "sessions": int(os.environ.get("REPRO_BENCH_STREAM_SESSIONS", 3)),
        "length": int(os.environ.get("REPRO_BENCH_STREAM_LENGTH", 32)),
        "keep_every": int(os.environ.get("REPRO_BENCH_STREAM_KEEP_EVERY", 8)),
        "horizon": int(os.environ.get("REPRO_BENCH_STREAM_HORIZON", 8)),
        "hidden": bench_budget()["hidden"],
        # The acceptance bar: streaming appends >= 3x cheaper than
        # re-decoding the whole prefix from scratch, at sessions of >= 32
        # fixes.  CI relaxes the floor (noisy shared runners); the ratio is
        # algorithmic (suffix decode vs full decode), not core-count bound.
        "min_speedup": float(os.environ.get("REPRO_BENCH_STREAM_MIN_SPEEDUP", 3.0)),
    }


def _simulate_sessions(network, spec, count: int, length: int,
                       keep_every: int):
    """``count`` raw low-sample traces of exactly ``length`` fixes each.

    The registry datasets cap traces at ~25 ε_ρ points (4-5 fixes) — far
    too short to exercise a streaming session — so the benchmark drives
    the simulator at ``length * keep_every`` dense points and downsamples,
    mirroring the offline pipeline's ε_τ construction.  Routes that long
    exceed ``TrajectorySimulator``'s 16-extension chaining budget, so the
    benchmark chains destinations itself (a taxi that keeps driving) with
    the simulator's own routing and motion primitives.
    """
    dense = (length - 1) * keep_every + 1  # downsample keeps 0, k, ..., last
    simulator = TrajectorySimulator(
        network, replace(spec.simulation, target_points=dense, seed=7))
    cfg = simulator.config
    lengths = simulator._lengths
    needed = dense * cfg.sample_interval * 36.0  # simulate_one's bound

    def chained_route():
        source, target = simulator._sample_od()
        if source == target:
            return None
        route = simulator._perturbed_route(source, target)
        if route is None or len(route) < 2:
            return None
        total = float(lengths[route].sum())
        for _ in range(600):
            if total >= needed:
                return route
            _, nxt = simulator._sample_od()
            if nxt == route[-1]:
                continue
            extension = simulator._perturbed_route(route[-1], nxt)
            if extension is None or len(extension) < 2:
                continue
            route.extend(extension[1:])
            total += float(lengths[extension[1:]].sum())
        return None

    sessions = []
    attempts = 0
    while len(sessions) < count and attempts < count * 30:
        attempts += 1
        route = chained_route()
        if route is None:
            continue
        seg_indices, ratios, times = simulator._drive(route)
        if len(times) < dense:
            continue
        keep = slice(0, dense)
        matched = MatchedTrajectory(
            np.asarray(route, dtype=np.int64)[seg_indices[keep]],
            ratios[keep], times[keep])
        raw = matched.to_raw(network, noise_std=cfg.gps_noise_std,
                             rng=simulator.rng)
        low = downsample_raw(raw, keep_every)
        assert len(low) == length, (len(low), length)
        sessions.append(low)
    if len(sessions) < count:
        raise RuntimeError(f"only {len(sessions)}/{count} sessions simulated")
    return sessions


def run_streaming_bench(sessions: int = 3, length: int = 32,
                        keep_every: int = 8, horizon: int = 8,
                        hidden: int = 32) -> dict:
    spec = get_spec("chengdu")
    network = generate_city(spec.city)
    model = RNTrajRec(network, small_model_config(hidden)).eval()
    traces = _simulate_sessions(network, spec, sessions, length, keep_every)

    serve_config = ServeConfig.for_spec(spec, cache_capacity=0)
    stream_config = StreamConfig.for_spec(spec, commit_horizon=horizon)
    oneshot = RecoveryService.from_model(model, serve_config)

    append_ms: list = []
    scratch_ms: list = []
    rows: list = []
    exact = True
    try:
        for index, low in enumerate(traces):
            streaming = StreamingRecoveryService.from_model(model, stream_config)
            session_id = streaming.open()
            revisions = 0
            decoded = skipped = 0
            for j in range(len(low)):
                update = streaming.append(session_id, low.xy[j:j + 1],
                                          low.times[j:j + 1])
                if update.trajectory is not None:
                    append_ms.append(update.latency_ms)
                    decoded += update.decoded_steps
                    skipped += update.skipped_steps
                    if update.revised_from >= 0:
                        revisions += 1
            final = streaming.finalize(session_id)

            # Baseline: a session-less server re-recovers the full prefix
            # on every new fix (same model, cache disabled).
            prefix_ms = []
            for j in range(2, len(low) + 1):
                start = time.perf_counter()
                reference = oneshot.recover(
                    RecoveryRequest(low.xy[:j], low.times[:j]), timeout=600.0)
                prefix_ms.append(1000.0 * (time.perf_counter() - start))
            scratch_ms.extend(prefix_ms)

            same = (np.array_equal(final.trajectory.segments,
                                   reference.trajectory.segments)
                    and np.allclose(final.trajectory.ratios,
                                    reference.trajectory.ratios)
                    and np.array_equal(final.trajectory.times,
                                       reference.trajectory.times))
            exact = exact and same
            rows.append({
                "session": index,
                "fixes": len(low),
                "grid_length": len(final.trajectory),
                "revised_appends": revisions,
                "decoded_steps": decoded,
                "skipped_steps": skipped,
                "finalize_matches_oneshot": bool(same),
            })
    finally:
        oneshot.close()

    mean_append = float(np.mean(append_ms))
    mean_scratch = float(np.mean(scratch_ms))
    return {
        "benchmark": "streaming",
        "env": bench_environment(),
        "dataset": "chengdu",
        "budget": {"sessions": sessions, "length": length,
                   "keep_every": keep_every, "horizon": horizon,
                   "hidden": hidden},
        "num_segments": int(network.num_segments),
        "sessions": rows,
        "appends_timed": len(append_ms),
        "stream_mean_append_ms": round(mean_append, 3),
        "stream_p95_append_ms": round(float(np.percentile(append_ms, 95)), 3),
        "scratch_mean_append_ms": round(mean_scratch, 3),
        "scratch_p95_append_ms": round(float(np.percentile(scratch_ms, 95)), 3),
        "speedup": round(mean_scratch / max(mean_append, 1e-9), 2),
        "all_finalizes_exact": bool(exact),
    }


def print_artifact(artifact: dict) -> None:
    print(f"\nStreaming recovery — per-append latency vs re-decode-from-scratch "
          f"(|V| = {artifact['num_segments']})")
    print(f"  sessions: {len(artifact['sessions'])} x "
          f"{artifact['budget']['length']} fixes "
          f"(grid ~{artifact['sessions'][0]['grid_length']} steps, "
          f"horizon {artifact['budget']['horizon']})")
    print(f"  streaming append : {artifact['stream_mean_append_ms']:8.2f} ms mean / "
          f"{artifact['stream_p95_append_ms']:8.2f} ms p95")
    print(f"  scratch re-decode: {artifact['scratch_mean_append_ms']:8.2f} ms mean / "
          f"{artifact['scratch_p95_append_ms']:8.2f} ms p95")
    print(f"  speedup: {artifact['speedup']:.2f}x; finalize exact: "
          f"{artifact['all_finalizes_exact']}")


def test_streaming_speedup():
    budget = _stream_budget()
    artifact = run_streaming_bench(
        sessions=budget["sessions"], length=budget["length"],
        keep_every=budget["keep_every"], horizon=budget["horizon"],
        hidden=budget["hidden"],
    )
    print_artifact(artifact)

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    with open(cache_dir / ARTIFACT_NAME, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"wrote {cache_dir / ARTIFACT_NAME}")

    # Exactness is a hard assert at every budget; the speedup floor is the
    # env-tunable gate (3x locally, relaxed on CI).
    assert artifact["all_finalizes_exact"], artifact["sessions"]
    assert artifact["speedup"] >= budget["min_speedup"], artifact["speedup"]


if __name__ == "__main__":
    test_streaming_speedup()
