"""Extension (not in the paper): training-data scaling of learned recovery.

The paper trains on ~105k trajectories; this reproduction runs at a few
hundred.  This bench makes the regime difference explicit by sweeping the
training-set size for a learned method and comparing against the
data-independent Linear+HMM baseline: the learned curve should rise with
data while the two-stage baseline stays flat — the crossover the paper's
Table III sits far beyond.
"""

import pytest

from repro.experiments import bench_budget, run_experiment

SIZES_FRACTIONS = (0.25, 0.5, 1.0)


def test_scaling_learned_vs_linear(benchmark, budget):
    full = budget["trajectories"]
    sizes = [max(60, int(full * f)) for f in SIZES_FRACTIONS]

    linear = run_experiment(dataset="chengdu", method="linear_hmm", keep_every=8)
    learned = {
        size: run_experiment(dataset="chengdu", method="mtrajrec", keep_every=8,
                             trajectories=size)
        for size in sizes
    }

    print("\nExtension — training-data scaling (Chengdu ×8)")
    print(f"{'train size':>12} {'mtrajrec F1':>12} {'linear F1':>12}")
    for size in sizes:
        print(f"{size:>12} {learned[size].metrics['F1 Score']:>12.4f} "
              f"{linear.metrics['F1 Score']:>12.4f}")

    f1s = [learned[size].metrics["F1 Score"] for size in sizes]
    # Shape: more data should not make the learned method substantially
    # worse (monotone-ish growth; tolerate small-sample noise).
    assert f1s[-1] >= f1s[0] - 0.03
    benchmark(lambda: f1s)
