"""Table III — main performance comparison.

Reproduces the paper's headline table: all nine methods on Chengdu (ε_τ =
8×ε_ρ and 16×ε_ρ), Porto (8×) and Shanghai-L (16×), reporting Recall /
Precision / F1 / Accuracy / MAE / RMSE.

Shape expectations (not absolute numbers — see DESIGN.md):
* RNTrajRec is the best end-to-end method on F1;
* end-to-end learned methods beat the naive Transformer baseline;
* Linear+HMM degrades from ×8 to ×16 sampling.

The heavy training is cached under benchmarks/_cache; the pytest
benchmark times RNTrajRec inference per batch.
"""

import numpy as np
import pytest

from repro.experiments import METHOD_NAMES, format_table, get_dataset, run_experiment
from repro.trajectory import iterate_batches

SETTINGS = [
    ("chengdu", 8),
    ("chengdu", 16),
    ("porto", 8),
    ("shanghai_l", 16),
]

# Order mirrors the paper's rows.
ROW_ORDER = [
    "linear_hmm",
    "dhtr_hmm",
    "t2vec",
    "transformer",
    "mtrajrec",
    "t3s",
    "gts",
    "neutraj",
    "rntrajrec",
]


@pytest.mark.parametrize("dataset,ratio", SETTINGS, ids=[f"{d}_x{r}" for d, r in SETTINGS])
def test_table3_rows(dataset, ratio, benchmark, budget):
    results = [
        run_experiment(dataset=dataset, method=method, keep_every=ratio)
        for method in ROW_ORDER
    ]
    print("\n" + format_table(results, f"Table III — {dataset} (ε_τ = ε_ρ × {ratio})"))

    by_name = {r.method: r for r in results}
    # RNTrajRec is competitive with the strongest encoders on F1.  The
    # paper's margins are 3-5 F1 points after 30 epochs × 105k
    # trajectories; at this CPU budget we check the ordering holds within
    # single-seed noise (the chengdu ×8 headline setting reproduces the
    # strict win — see EXPERIMENTS.md).
    assert by_name["rntrajrec"].metrics["F1 Score"] >= by_name["transformer"].metrics["F1 Score"] - 0.03
    assert by_name["rntrajrec"].metrics["F1 Score"] >= by_name["mtrajrec"].metrics["F1 Score"] - 0.06
    if dataset == "chengdu" and ratio == 8:
        best_baseline = max(
            r.metrics["F1 Score"] for r in results if r.method != "rntrajrec"
        )
        assert by_name["rntrajrec"].metrics["F1 Score"] >= best_baseline
    # Everything produces sane values.
    for result in results:
        assert 0.0 <= result.metrics["Accuracy"] <= 1.0
        assert result.metrics["RMSE"] >= result.metrics["MAE"]

    # Benchmark: RNTrajRec inference on one test batch (cached model state
    # is not persisted, so time the untrained forward pass — the
    # architecture cost is identical).
    from repro.core import RNTrajRec, RNTrajRecConfig

    data = get_dataset(dataset, budget["trajectories"], ratio)
    model = RNTrajRec(data.network, RNTrajRecConfig(
        hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
        receptive_delta=300.0, max_subgraph_nodes=32,
    ))
    model.eval()
    batch = next(iterate_batches(data.test, 8))
    benchmark(lambda: model.recover(batch))


def test_table3_cross_interval_degradation(benchmark):
    """Linear+HMM degrades sharply from ×8 to ×16 (paper §VI-B)."""
    x8 = run_experiment(dataset="chengdu", method="linear_hmm", keep_every=8)
    x16 = run_experiment(dataset="chengdu", method="linear_hmm", keep_every=16)
    print(f"\nLinear+HMM accuracy: x8={x8.metrics['Accuracy']:.4f} "
          f"x16={x16.metrics['Accuracy']:.4f}")
    assert x16.metrics["Accuracy"] < x8.metrics["Accuracy"]
    assert x16.metrics["MAE"] > x8.metrics["MAE"]
    benchmark(lambda: format_table([x8, x16], "Linear+HMM degradation"))
