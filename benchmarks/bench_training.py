"""Training benchmark: ParallelTrainer vs serial epoch throughput.

Trains the same model twice from an identical initialization — once with
the serial :class:`repro.train.Trainer`, once with
:class:`repro.train.ParallelTrainer` at ``REPRO_BENCH_TRAIN_WORKERS``
gradient workers — and writes a ``BENCH_training.json`` artifact into the
shared benchmark cache directory with per-epoch wall times,
samples-per-second throughput, and both loss trajectories.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_training.py -q -s

Two assertions:

* **loss trajectory** — the parallel run's per-epoch mean loss must stay
  within ``REPRO_BENCH_TRAIN_MAX_LOSS_DEV`` (default 5%) of the serial
  run's: gradient averaging is exact for the per-element losses, and only
  the two documented batch-coupled features (GraphNorm batch statistics,
  graph-loss hit normalizer — see ``src/repro/train/parallel.py``) leave
  sub-percent residuals.  This always runs.
* **throughput** — parallel epoch throughput must reach
  ``REPRO_BENCH_TRAIN_MIN_SPEEDUP`` × serial (default 2.0 at 4 workers).
  Data parallelism cannot beat the hardware: the gate only applies when
  the process has at least 2 usable cores (the artifact records the core
  count and the gate outcome either way; CI's 4-vCPU runners enforce a
  noise-relaxed floor, and the 2x bar is for ≥4-core hosts).

Budget knobs: ``REPRO_BENCH_TRAIN_TRAJECTORIES`` (default 256),
``REPRO_BENCH_TRAIN_EPOCHS`` (default 3), ``REPRO_BENCH_TRAIN_BATCH``
(default 64 — large batches are the data-parallel regime; the per-batch
road-feature forward is fixed cost, so tiny batches under-utilize the
workers), ``REPRO_BENCH_TRAIN_WORKERS`` (default 4).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.core import RNTrajRec
from repro.experiments import (
    bench_budget,
    bench_environment,
    get_dataset,
    quick_train_config,
    small_model_config,
)
from repro.train import ParallelTrainer, Trainer, fork_available

ARTIFACT_NAME = "BENCH_training.json"
INIT_SEED = 7


def _train_budget():
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_TRAIN_TRAJECTORIES", 256)),
        "epochs": int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", 3)),
        "batch_size": int(os.environ.get("REPRO_BENCH_TRAIN_BATCH", 64)),
        "workers": int(os.environ.get("REPRO_BENCH_TRAIN_WORKERS", 4)),
        "hidden": bench_budget()["hidden"],
    }


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run(data, budget, trainer_factory):
    nn.init.seed_everything(INIT_SEED)
    model = RNTrajRec(data.network, small_model_config(budget["hidden"]))
    config = quick_train_config(budget["epochs"],
                                batch_size=budget["batch_size"])
    trainer = trainer_factory(model, config)
    result = trainer.fit(data.train)
    epoch_seconds = [e.seconds for e in result.history]
    # Steady-state throughput: the first epoch amortizes one-off cache
    # building (sub-graph arenas, spatial indexes) — in every process for
    # the parallel trainer — so it is reported separately, not averaged in.
    steady = epoch_seconds[1:] if len(epoch_seconds) > 1 else epoch_seconds
    return {
        "losses": [round(e.loss, 6) for e in result.history],
        "epoch_seconds": [round(s, 3) for s in epoch_seconds],
        "warmup_epoch_seconds": round(epoch_seconds[0], 3),
        "samples_per_sec": round(
            len(data.train) / (sum(steady) / len(steady)), 3),
    }


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_parallel_training_throughput():
    budget = _train_budget()
    min_speedup = float(os.environ.get("REPRO_BENCH_TRAIN_MIN_SPEEDUP", 2.0))
    max_loss_dev = float(os.environ.get("REPRO_BENCH_TRAIN_MAX_LOSS_DEV", 0.05))
    cores = _usable_cores()
    data = get_dataset("chengdu", budget["trajectories"], 8)

    serial = _run(data, budget, lambda m, c: Trainer(m, c))
    parallel = _run(data, budget, lambda m, c: ParallelTrainer(
        m, c, num_workers=budget["workers"]))

    speedup = parallel["samples_per_sec"] / serial["samples_per_sec"]
    loss_dev = max(
        abs(a - b) / max(abs(a), 1e-12)
        for a, b in zip(serial["losses"], parallel["losses"]))

    if cores < 2:
        gate = f"skipped: {cores} usable core(s), data parallelism cannot speed up"
    elif speedup >= min_speedup:
        gate = f"passed: {speedup:.2f}x >= {min_speedup:.2f}x"
    else:
        gate = f"failed: {speedup:.2f}x < {min_speedup:.2f}x"

    print(f"\nTraining throughput — serial vs {budget['workers']} gradient "
          f"workers, Chengdu (ε_τ = ε_ρ × 8), batch {budget['batch_size']}, "
          f"{cores} core(s)")
    header = f"{'mode':>10}{'samples/s':>12}{'epoch s':>22}{'final loss':>12}"
    print(header)
    print("-" * len(header))
    for mode, row in (("serial", serial), (f"par x{budget['workers']}", parallel)):
        print(f"{mode:>10}{row['samples_per_sec']:>12.2f}"
              f"{str(row['epoch_seconds']):>22}{row['losses'][-1]:>12.4f}")
    print(f"speedup {speedup:.2f}x | max loss deviation {loss_dev:.2e} | "
          f"gate {gate}")

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "benchmark": "training_throughput",
        "env": bench_environment(),
        "dataset": "chengdu_x8",
        "budget": budget,
        "usable_cores": cores,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
        "loss_trajectory_max_rel_dev": float(f"{loss_dev:.3e}"),
        "min_speedup_required": min_speedup,
        "speedup_gate": gate,
    }
    with open(cache_dir / ARTIFACT_NAME, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"wrote {cache_dir / ARTIFACT_NAME}")

    # Correctness gate: the parallel run must track the serial trajectory.
    assert loss_dev <= max_loss_dev, (
        f"parallel loss trajectory deviates {loss_dev:.3f} > {max_loss_dev}")
    assert np.isfinite(parallel["losses"][-1])
    # Throughput gate: only meaningful when the cores exist.
    if cores >= 2:
        assert speedup >= min_speedup, gate
