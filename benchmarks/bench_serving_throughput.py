"""Serving-layer benchmark: QPS and latency percentiles vs batch size.

Measures :class:`repro.serve.RecoveryService` replaying held-out traces as
concurrent requests at ``max_batch_size`` ∈ {1, 4, 16}, and writes a
``BENCH_serving.json`` artifact into the shared benchmark cache directory
(``REPRO_CACHE_DIR``, default ``benchmarks/_cache``) alongside the
experiment-harness result files.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q -s

Budget knobs: ``REPRO_BENCH_SERVE_TRAJECTORIES`` (default 160) and
``REPRO_BENCH_SERVE_EPOCHS`` (default 2) keep the one-off training cheap;
the model itself is cached across the three batch-size configurations.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core import RNTrajRec
from repro.train import Trainer
from repro.experiments import bench_budget, get_dataset, quick_train_config, small_model_config
from repro.serve import RecoveryRequest, RecoveryService, ServeConfig

BATCH_SIZES = (1, 4, 16)
ARTIFACT_NAME = "BENCH_serving.json"


def _serve_budget():
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_SERVE_TRAJECTORIES", 160)),
        "epochs": int(os.environ.get("REPRO_BENCH_SERVE_EPOCHS", 2)),
        "hidden": bench_budget()["hidden"],
    }


@pytest.fixture(scope="module")
def trained():
    budget = _serve_budget()
    data = get_dataset("chengdu", budget["trajectories"], 8)
    model = RNTrajRec(data.network, small_model_config(budget["hidden"]))
    Trainer(model, quick_train_config(budget["epochs"])).fit(data.train)
    model.eval()
    return data, model


def _replay(service, requests):
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = list(pool.map(service.submit, requests))
    for future in futures:
        future.result(timeout=600.0)
    return time.perf_counter() - start


def test_serving_throughput_vs_batch_size(trained):
    data, model = trained
    pool = data.test + data.val
    requests = [
        RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                        holiday=s.holiday, request_id=f"bench-{i}")
        for i, s in enumerate(pool[i % len(pool)] for i in range(48))
    ]

    rows = []
    for batch_size in BATCH_SIZES:
        service = RecoveryService.from_model(model, ServeConfig.for_dataset(
            data,
            max_batch_size=batch_size,
            max_wait_ms=25.0,
            cache_capacity=0,  # measure the model path, not the cache
        ))
        elapsed = _replay(service, requests)
        stats = service.stats()
        service.close()
        rows.append({
            "max_batch_size": batch_size,
            "requests": len(requests),
            "wall_seconds": round(elapsed, 3),
            "qps": round(len(requests) / elapsed, 3),
            "latency_ms_p50": stats["latency_ms_p50"],
            "latency_ms_p95": stats["latency_ms_p95"],
            "mean_batch_occupancy": stats["mean_batch_occupancy"],
            "max_batch_occupancy": stats["max_batch_occupancy"],
        })

    print("\nServing throughput — RNTrajRec RecoveryService, Chengdu (ε_τ = ε_ρ × 8)")
    header = (f"{'batch':>6}{'QPS':>10}{'p50 ms':>10}{'p95 ms':>10}"
              f"{'occ mean':>10}{'occ max':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['max_batch_size']:>6}{row['qps']:>10.2f}"
              f"{row['latency_ms_p50']:>10.1f}{row['latency_ms_p95']:>10.1f}"
              f"{row['mean_batch_occupancy']:>10.2f}{row['max_batch_occupancy']:>9}")

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "benchmark": "serving_throughput",
        "dataset": "chengdu_x8",
        "budget": _serve_budget(),
        "num_parameters": int(model.num_parameters()),
        "rows": rows,
    }
    with open(cache_dir / ARTIFACT_NAME, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"wrote {cache_dir / ARTIFACT_NAME}")

    by_size = {row["max_batch_size"]: row for row in rows}
    # Batch size 1 cannot coalesce; 16 must actually batch under load.
    assert by_size[1]["max_batch_occupancy"] == 1
    assert by_size[16]["max_batch_occupancy"] > 1
    # Loose sanity bound only: exact QPS ordering is noisy on a shared CPU,
    # so we assert batching is not catastrophically slower than serial.
    assert by_size[16]["qps"] >= 0.5 * by_size[1]["qps"]


def test_serving_cache_hot_path(trained):
    """Request-level cache: a hot repeated trace answers in microseconds."""
    data, model = trained
    service = RecoveryService.from_model(
        model, ServeConfig.for_dataset(data, max_wait_ms=5.0))
    sample = data.test[0]
    request = RecoveryRequest(sample.raw_low.xy, sample.raw_low.times,
                              hour=sample.hour, holiday=sample.holiday)
    cold = service.recover(request, timeout=600.0)
    hot = [service.recover(request, timeout=600.0) for _ in range(10)]
    stats = service.stats()
    service.close()

    assert not cold.cached and all(r.cached for r in hot)
    assert stats["cache_hit_rate"] > 0.9 * (10 / 11)
    hot_ms = max(r.latency_ms for r in hot)
    print(f"\ncold={cold.latency_ms:.1f} ms, hot(max of 10)={hot_ms:.3f} ms, "
          f"speedup {cold.latency_ms / max(hot_ms, 1e-6):.0f}x")
    assert hot_ms < cold.latency_ms