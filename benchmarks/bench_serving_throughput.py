"""Serving benchmark: continuous batching vs run-to-completion draining.

The headline test replays a **mixed-length open-loop workload** — requests
of five different trace lengths arriving at a fixed offered rate, the
standard serving-benchmark methodology — against two schedulers over the
same trained model:

* ``continuous`` (default): the slot-table decode engine; admission is
  immediate, every in-flight sequence advances one step per kernel sweep,
  short requests retire without waiting for long co-residents.
* ``microbatch``: the PR 1 run-to-completion path; requests coalesce by
  input length behind a wait window and each admitted batch decodes to
  completion before the next starts.  Mixed-length traffic fragments its
  groups, so most dispatches ride the window expiry.

Before any perf claim the test hard-asserts the correctness anchor: every
continuous response of every trial is **bit-identical** (segments and
rates) to a solo one-shot ``recover`` of the same request.  Then it gates

* mean latency improvement ≥ ``REPRO_BENCH_SERVE_MIN_LATENCY_GAIN``
  (default 1.5×), and
* achieved QPS ratio ≥ ``REPRO_BENCH_SERVE_MIN_QPS_RATIO`` (default 1.0 —
  "no worse"; the continuous run drains its tail sooner, so achieved QPS
  over the same arrival span is at parity or better),

and writes ``BENCH_serving.json`` into ``REPRO_CACHE_DIR`` (default
``benchmarks/_cache``).

The replay runs ``REPRO_BENCH_SERVE_TRIALS`` times per scheduler and the
gated mean is the **mean of per-request minima across trials** — the
``timeit`` rationale, applied per request: every trial replays the same
request against the same trained model, so on a shared CPU interference
only ever *adds* latency and a request's minimum across trials is its
interference-free latency under that scheduling discipline.  Averaging
the per-request minima keeps the estimator low-variance (64 independent
minima) where picking one "best trial" would still need a single fully
clean window.  The summary table shows each scheduler's best trial.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q -s

Budget knobs: ``REPRO_BENCH_SERVE_TRAJECTORIES`` (default 160),
``REPRO_BENCH_SERVE_EPOCHS`` (default 2), ``REPRO_BENCH_SERVE_REQUESTS``
(default 64), ``REPRO_BENCH_SERVE_GAP_MS`` (default 15.0, the arrival
spacing of the open-loop replay) and ``REPRO_BENCH_SERVE_TRIALS``
(default 3).
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core import RNTrajRec
from repro.experiments import (
    bench_budget,
    bench_environment,
    get_dataset,
    quick_train_config,
    small_model_config,
)
from repro.serve import RecoveryRequest, RecoveryService, ServeConfig
from repro.train import Trainer
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)

BATCH_SIZES = (1, 4, 16)
ARTIFACT_NAME = "BENCH_serving.json"
#: the arrival cycle of the mixed workload, as trace lengths (simulator
#: points).  Mostly short trips with a periodic long straggler — the
#: high-variance traffic shape that run-to-completion handles worst: a
#: straggler's whole decode blocks the queue, and distinct input lengths
#: keep requests from coalescing into one padded batch.  At keep_every=8
#: the ε_ρ grids span ~9 to ~97 decode steps.
MIX_PATTERN = (9, 17, 9, 25, 65)


def _serve_budget():
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_SERVE_TRAJECTORIES", 160)),
        "epochs": int(os.environ.get("REPRO_BENCH_SERVE_EPOCHS", 2)),
        "requests": int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", 64)),
        "gap_ms": float(os.environ.get("REPRO_BENCH_SERVE_GAP_MS", 15.0)),
        "trials": int(os.environ.get("REPRO_BENCH_SERVE_TRIALS", 4)),
        "hidden": bench_budget()["hidden"],
    }


@pytest.fixture(scope="module")
def trained():
    budget = _serve_budget()
    data = get_dataset("chengdu", budget["trajectories"], 8)
    model = RNTrajRec(data.network, small_model_config(budget["hidden"]))
    Trainer(model, quick_train_config(budget["epochs"])).fit(data.train)
    model.eval()
    return data, model


@pytest.fixture(scope="module")
def mixed_workload(trained):
    """Mixed-length samples simulated on the serving network, arriving in
    the ``MIX_PATTERN`` cycle: mostly short trips, a long straggler every
    seventh request, consecutive arrivals almost never sharing an input
    length."""
    data, _ = trained
    budget = _serve_budget()
    pools = {}
    for class_index, points in enumerate(sorted(set(MIX_PATTERN))):
        sim = TrajectorySimulator(
            data.network,
            SimulationConfig(target_points=points, seed=100 + class_index))
        pools[points] = build_samples(sim.simulate(12), data.network,
                                      DatasetConfig(keep_every=8))
    samples = []
    for i in range(budget["requests"]):
        pool = pools[MIX_PATTERN[i % len(MIX_PATTERN)]]
        samples.append(pool[(i // len(MIX_PATTERN)) % len(pool)])
    return samples


def _requests(samples, prefix):
    return [
        RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                        holiday=s.holiday, request_id=f"{prefix}-{i}")
        for i, s in enumerate(samples)
    ]


def _replay_closed_loop(service, requests):
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = list(pool.map(service.submit, requests))
    for future in futures:
        future.result(timeout=600.0)
    return time.perf_counter() - start


def _replay_open_loop(service, requests, gap_s):
    """Submit at a fixed offered rate; returns (responses, elapsed) where
    elapsed spans first submission → last completion."""
    futures = []
    start = time.perf_counter()
    for i, request in enumerate(requests):
        lag = start + i * gap_s - time.perf_counter()
        if lag > 0:
            time.sleep(lag)
        futures.append(service.submit(request))
    responses = [future.result(timeout=600.0) for future in futures]
    return responses, time.perf_counter() - start


def _write_artifact(payload):
    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / ARTIFACT_NAME
    if path.exists():
        with open(path) as handle:
            existing = json.load(handle)
        existing.update(payload)
        payload = existing
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"wrote {path}")


def test_continuous_vs_run_to_completion(trained, mixed_workload):
    data, model = trained
    budget = _serve_budget()
    gap_s = budget["gap_ms"] / 1000.0

    def service_for(scheduler):
        return RecoveryService.from_model(model, ServeConfig.for_dataset(
            data,
            scheduler=scheduler,
            max_batch_size=16,
            cache_capacity=0,       # measure the model path, not the cache
        ))

    def run_once(scheduler, trial):
        service = service_for(scheduler)
        try:
            # Warm shared caches (X_road, sub-graph arena) outside timing.
            for response in [service.recover(r, timeout=600.0)
                             for r in _requests(mixed_workload[:4], "warm")]:
                assert response.trajectory is not None
            responses, elapsed = _replay_open_loop(
                service, _requests(mixed_workload, f"{scheduler}-{trial}"),
                gap_s)
            stats = service.stats()
        finally:
            service.close()
        latencies = np.array([r.latency_ms for r in responses])
        return {
            "responses": responses,
            "row": {
                "scheduler": scheduler,
                "trial": trial,
                "requests": len(responses),
                "offered_gap_ms": budget["gap_ms"],
                "wall_seconds": round(elapsed, 3),
                "qps": round(len(responses) / elapsed, 3),
                "latency_ms_mean": round(float(latencies.mean()), 3),
                "latency_ms_p50": round(float(np.percentile(latencies, 50)), 3),
                "latency_ms_p95": round(float(np.percentile(latencies, 95)), 3),
                "mean_batch_occupancy": stats["mean_batch_occupancy"],
                "max_batch_occupancy": stats["max_batch_occupancy"],
            },
        }

    trials = {"microbatch": [], "continuous": []}
    for trial in range(budget["trials"]):
        for scheduler in ("microbatch", "continuous"):
            trials[scheduler].append(run_once(scheduler, trial))

    # ------------------------------------------------------------------
    # Correctness anchor first: every continuous response of every trial
    # bit-identical to the solo one-shot recover of its own request, rates
    # included — each trial is a different interleaving, and none of them
    # may be observable in the output.
    # ------------------------------------------------------------------
    solo = [model.recover(make_batch([sample])) for sample in mixed_workload]
    for run in trials["continuous"]:
        for (seg, rate), response in zip(solo, run["responses"]):
            assert np.array_equal(response.trajectory.segments, seg[0]), \
                f"segment divergence on {response.request_id}"
            assert np.array_equal(response.trajectory.ratios, rate[0]), \
                f"rate divergence on {response.request_id}"

    # The gated means are the per-request minima across trials (see the
    # module docstring); the displayed rows are each scheduler's best
    # trial, whose p50/p95/occupancy stay internally coherent.
    def floor_mean(runs):
        per_trial = np.array([[r.latency_ms for r in run["responses"]]
                              for run in runs])
        return float(per_trial.min(axis=0).mean())

    rtc = min((r["row"] for r in trials["microbatch"]),
              key=lambda row: row["latency_ms_mean"])
    cont = min((r["row"] for r in trials["continuous"]),
               key=lambda row: row["latency_ms_mean"])
    rtc_floor = floor_mean(trials["microbatch"])
    cont_floor = floor_mean(trials["continuous"])
    latency_gain = rtc_floor / max(cont_floor, 1e-9)
    qps_ratio = cont["qps"] / max(rtc["qps"], 1e-9)

    print("\nContinuous batching vs run-to-completion — mixed-length open loop"
          f" (best of {budget['trials']} trials)")
    header = (f"{'scheduler':>12}{'QPS':>9}{'mean ms':>9}{'p50 ms':>9}"
              f"{'p95 ms':>9}{'occ mean':>10}{'occ max':>9}")
    print(header)
    print("-" * len(header))
    for row in (rtc, cont):
        print(f"{row['scheduler']:>12}{row['qps']:>9.1f}"
              f"{row['latency_ms_mean']:>9.1f}{row['latency_ms_p50']:>9.1f}"
              f"{row['latency_ms_p95']:>9.1f}{row['mean_batch_occupancy']:>10.2f}"
              f"{row['max_batch_occupancy']:>9}")
    per_trial = [r["row"]["latency_ms_mean"] for r in trials["microbatch"]], \
                [r["row"]["latency_ms_mean"] for r in trials["continuous"]]
    print(f"trial means rtc={per_trial[0]} cont={per_trial[1]}")
    print(f"per-request floor means: rtc {rtc_floor:.2f} ms, "
          f"cont {cont_floor:.2f} ms")
    print(f"mean latency gain {latency_gain:.2f}x, QPS ratio {qps_ratio:.2f}")

    _write_artifact({
        "benchmark": "serving_throughput",
        "env": bench_environment(),
        "dataset": "chengdu_x8",
        "budget": _serve_budget(),
        "num_parameters": int(model.num_parameters()),
        "mixed_workload": {
            "trace_points": list(MIX_PATTERN),
            "rows": [rtc, cont],
            "trial_rows": [r["row"] for s in ("microbatch", "continuous")
                           for r in trials[s]],
            "latency_ms_mean_floor": {"microbatch": round(rtc_floor, 3),
                                      "continuous": round(cont_floor, 3)},
            "latency_gain": round(latency_gain, 3),
            "qps_ratio": round(qps_ratio, 3),
        },
    })

    min_gain = float(os.environ.get("REPRO_BENCH_SERVE_MIN_LATENCY_GAIN", 1.5))
    min_qps = float(os.environ.get("REPRO_BENCH_SERVE_MIN_QPS_RATIO", 1.0))
    assert latency_gain >= min_gain, (
        f"continuous mean latency gain {latency_gain:.2f}x < {min_gain}x")
    assert qps_ratio >= min_qps, (
        f"continuous QPS ratio {qps_ratio:.2f} < {min_qps}")


def test_serving_throughput_vs_batch_size(trained):
    """The historical closed-loop sweep: QPS/latency vs slot count."""
    data, model = trained
    pool = data.test + data.val
    requests = [
        RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                        holiday=s.holiday, request_id=f"bench-{i}")
        for i, s in enumerate(pool[i % len(pool)] for i in range(48))
    ]

    rows = []
    for batch_size in BATCH_SIZES:
        service = RecoveryService.from_model(model, ServeConfig.for_dataset(
            data,
            max_batch_size=batch_size,
            cache_capacity=0,
        ))
        elapsed = _replay_closed_loop(service, requests)
        stats = service.stats()
        service.close()
        rows.append({
            "max_batch_size": batch_size,
            "requests": len(requests),
            "wall_seconds": round(elapsed, 3),
            "qps": round(len(requests) / elapsed, 3),
            "latency_ms_p50": stats["latency_ms_p50"],
            "latency_ms_p95": stats["latency_ms_p95"],
            "mean_batch_occupancy": stats["mean_batch_occupancy"],
            "max_batch_occupancy": stats["max_batch_occupancy"],
        })

    print("\nServing throughput — continuous engine, slots ∈ {1, 4, 16}, Chengdu")
    header = (f"{'slots':>6}{'QPS':>10}{'p50 ms':>10}{'p95 ms':>10}"
              f"{'occ mean':>10}{'occ max':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['max_batch_size']:>6}{row['qps']:>10.2f}"
              f"{row['latency_ms_p50']:>10.1f}{row['latency_ms_p95']:>10.1f}"
              f"{row['mean_batch_occupancy']:>10.2f}{row['max_batch_occupancy']:>9}")

    _write_artifact({"env": bench_environment(), "slot_sweep_rows": rows})

    by_size = {row["max_batch_size"]: row for row in rows}
    # One slot cannot interleave; 16 must actually hold multiple in flight.
    assert by_size[1]["max_batch_occupancy"] == 1
    assert by_size[16]["max_batch_occupancy"] > 1
    # Loose sanity bound only: exact QPS ordering is noisy on a shared CPU,
    # so we assert interleaving is not catastrophically slower than serial.
    assert by_size[16]["qps"] >= 0.5 * by_size[1]["qps"]


def test_serving_cache_hot_path(trained):
    """Request-level cache: a hot repeated trace answers in microseconds."""
    data, model = trained
    service = RecoveryService.from_model(
        model, ServeConfig.for_dataset(data))
    sample = data.test[0]
    request = RecoveryRequest(sample.raw_low.xy, sample.raw_low.times,
                              hour=sample.hour, holiday=sample.holiday)
    cold = service.recover(request, timeout=600.0)
    hot = [service.recover(request, timeout=600.0) for _ in range(10)]
    stats = service.stats()
    service.close()

    assert not cold.cached and all(r.cached for r in hot)
    assert stats["cache_hit_rate"] > 0.9 * (10 / 11)
    hot_ms = max(r.latency_ms for r in hot)
    print(f"\ncold={cold.latency_ms:.1f} ms, hot(max of 10)={hot_ms:.3f} ms, "
          f"speedup {cold.latency_ms / max(hot_ms, 1e-6):.0f}x")
    assert hot_ms < cold.latency_ms