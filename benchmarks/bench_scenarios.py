"""Scenario-matrix benchmark: recovery robustness under degraded traces.

Trains two small models on Chengdu — a fixed-rate baseline (the paper's
keep-every-8 regime) and a sampling-rate curriculum model
(:func:`repro.scenarios.fit_rate_curriculum`) — then evaluates both over
the full :func:`repro.scenarios.standard_scenarios` matrix on held-out
traces: batch Table-III metrics per scenario plus a per-fix streaming
replay through :class:`repro.stream.StreamingRecoveryService` (revision
rates, finalize exactness).  A cross-city row transfers the baseline onto
the Porto network (name+shape state transfer) and fine-tunes against a
from-scratch control at equal budget.

Gates:

* **identity** — the no-transform scenario must rebuild the clean
  pipeline's samples *bit-for-bit* (positions, times, observed steps,
  hour/holiday, sparse constraint masks), and its matrix row must carry
  exactly the clean evaluation's metrics (hard assert at every budget);
* **floors** — every scenario's segment accuracy must stay at or above
  its declared ``accuracy_floor`` × ``REPRO_BENCH_SCEN_FLOOR_SCALE``
  (default 1.0; CI smoke relaxes the scale, not the floors);
* **streaming exactness** — every replayed session's ``finalize`` must
  equal one-shot recovery of the same degraded sample (hard);
* **curriculum** — the curriculum model's mean accuracy over the held-out
  degraded regimes (``variable_rate``, ``sparse_x2``) must meet or beat
  the fixed-rate baseline's (margin env-tunable for smoke budgets);
* **transfer** — the warm start must move more than half the tensors
  (structural: encoder/GRU/rate-head are city-agnostic).

Writes ``BENCH_scenarios.json`` into ``REPRO_CACHE_DIR`` (default
``benchmarks/_cache``) next to the other artifacts.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q -s

Budget knobs: ``REPRO_BENCH_SCEN_TRAJECTORIES`` (default 160),
``REPRO_BENCH_SCEN_EPOCHS`` (default 15, split over curriculum phases),
``REPRO_BENCH_SCEN_STREAM_SESSIONS`` (default 4 replays per scenario),
``REPRO_BENCH_SCEN_FLOOR_SCALE``, ``REPRO_BENCH_SCEN_MARGIN``,
``REPRO_BENCH_HIDDEN`` (shared with the other benchmarks).
"""

import json
import os
from pathlib import Path

import numpy as np

from repro import nn
from repro.core import RNTrajRec
from repro.datasets import get_spec
from repro.eval import evaluate_model
from repro.experiments import (
    bench_budget,
    bench_environment,
    quick_train_config,
    small_model_config,
)
from repro.roadnet import generate_city
from repro.roadnet.shortest_path import ShortestPathEngine
from repro.scenarios import (
    RateCurriculum,
    Scenario,
    build_scenario_samples,
    evaluate_matrix,
    fit_rate_curriculum,
    standard_scenarios,
    transfer_model,
)
from repro.stream import StreamConfig
from repro.train import Trainer, quick_accuracy
from repro.trajectory import build_samples
from repro.trajectory.simulate import TrajectorySimulator

ARTIFACT_NAME = "BENCH_scenarios.json"

# The held-out degraded regimes of the curriculum gate: the baseline
# trains at fixed keep-every-8 and never sees these observation patterns.
CURRICULUM_GATE_REGIMES = ("variable_rate", "sparse_x2")


def _scen_budget() -> dict:
    return {
        "trajectories": int(os.environ.get("REPRO_BENCH_SCEN_TRAJECTORIES", 160)),
        "epochs": int(os.environ.get("REPRO_BENCH_SCEN_EPOCHS", 15)),
        "hidden": bench_budget()["hidden"],
        "stream_sessions": int(os.environ.get("REPRO_BENCH_SCEN_STREAM_SESSIONS", 4)),
        # Degradation floors scale with this (CI smoke trains tiny models
        # whose absolute accuracy is meaningless; the identity/exactness
        # gates stay hard there).
        "floor_scale": float(os.environ.get("REPRO_BENCH_SCEN_FLOOR_SCALE", 1.0)),
        # Slack on the curriculum-beats-baseline gate, again for smoke
        # budgets where two 1-epoch models are statistically tied.
        "margin": float(os.environ.get("REPRO_BENCH_SCEN_MARGIN", 0.0)),
    }


def _check_identity_bit_exact(pairs, network, config) -> bool:
    """The identity scenario must reproduce ``build_samples`` bit-for-bit."""
    clean = build_samples(pairs, network, config)
    ident = build_scenario_samples(pairs, network,
                                   Scenario(name="identity"), config)
    if len(clean) != len(ident):
        return False
    for a, b in zip(clean, ident):
        if not (np.array_equal(a.raw_low.xy, b.raw_low.xy)
                and np.array_equal(a.raw_low.times, b.raw_low.times)
                and np.array_equal(a.observed_steps, b.observed_steps)
                and a.hour == b.hour and a.holiday == b.holiday
                and len(a.constraints) == len(b.constraints)):
            return False
        for ca, cb in zip(a.constraints, b.constraints):
            if (ca is None) != (cb is None):
                return False
            if ca is not None and not all(
                    np.array_equal(np.asarray(x), np.asarray(y))
                    for x, y in zip(ca, cb)):
                return False
    return True


def _train_baseline(network, train_pairs, spec, hidden: int, epochs: int):
    """Fixed-rate model: the paper's keep-every-k regime, nothing else."""
    nn.init.seed_everything(0)
    model = RNTrajRec(network, small_model_config(hidden))
    samples = build_samples(train_pairs, network, spec.dataset)
    Trainer(model, quick_train_config(epochs)).fit(samples)
    return model


def _train_curriculum(network, train_pairs, spec, hidden: int, epochs: int):
    """Curriculum model: same seed, same budget, phased rate mixtures."""
    nn.init.seed_everything(0)
    model = RNTrajRec(network, small_model_config(hidden))
    curriculum = RateCurriculum.standard(
        keep_every=spec.dataset.keep_every, total_epochs=epochs)
    fit_rate_curriculum(model, train_pairs, network, curriculum,
                        dataset_config=spec.dataset,
                        train_config=quick_train_config(epochs))
    return model, curriculum


def _run_transfer(source_model, spec_b, hidden: int, epochs: int,
                  trajectories: int) -> dict:
    """Cross-city row: warm-start on city B vs from-scratch, equal budget."""
    network_b = generate_city(spec_b.city)
    simulator = TrajectorySimulator(network_b, spec_b.simulation)
    pairs_b = simulator.simulate(trajectories)
    split = max(2, int(len(pairs_b) * 0.75))
    train_b = build_samples(pairs_b[:split], network_b, spec_b.dataset)
    eval_b = build_samples(pairs_b[split:], network_b, spec_b.dataset)

    nn.init.seed_everything(1)
    transferred, report = transfer_model(source_model, network_b)
    Trainer(transferred, quick_train_config(epochs)).fit(train_b)

    nn.init.seed_everything(1)
    scratch = RNTrajRec(network_b, small_model_config(hidden))
    Trainer(scratch, quick_train_config(epochs)).fit(train_b)

    return {
        "target_dataset": spec_b.name,
        "finetune_epochs": epochs,
        "eval_trajectories": len(eval_b),
        **report.as_dict(),
        "transfer_accuracy": round(quick_accuracy(transferred, eval_b), 4),
        "scratch_accuracy": round(quick_accuracy(scratch, eval_b), 4),
    }


def run_scenarios_bench(trajectories: int = 160, epochs: int = 15,
                        hidden: int = 32, stream_sessions: int = 4) -> dict:
    spec = get_spec("chengdu")
    network = generate_city(spec.city)
    simulator = TrajectorySimulator(network, spec.simulation)
    pairs = simulator.simulate(trajectories)
    split = max(2, int(len(pairs) * 0.75))
    train_pairs, eval_pairs = pairs[:split], pairs[split:]

    identity_exact = _check_identity_bit_exact(eval_pairs, network, spec.dataset)

    baseline = _train_baseline(network, train_pairs, spec, hidden, epochs)
    curriculum_model, curriculum = _train_curriculum(
        network, train_pairs, spec, hidden, epochs)

    engine = ShortestPathEngine(network)
    scenarios = standard_scenarios(spec.dataset.keep_every)
    stream_config = StreamConfig.for_spec(spec)
    matrices = {}
    for tag, model in (("baseline", baseline),
                       ("curriculum", curriculum_model)):
        cells = evaluate_matrix(
            model, eval_pairs, network, scenarios, config=spec.dataset,
            engine=engine, stream_config=stream_config,
            stream_limit=stream_sessions)
        matrices[tag] = [cell.as_dict() for cell in cells]

    # The identity row must carry exactly the clean pipeline's metrics.
    clean_samples = build_samples(eval_pairs, network, spec.dataset)
    clean_report = evaluate_model(baseline, clean_samples, engine)
    clean_metrics = {k: round(v, 4)
                     for k, v in clean_report.metrics.as_row().items()}

    def _mean_gate_accuracy(matrix):
        return float(np.mean([
            cell["metrics"]["Accuracy"] for cell in matrix
            if cell["scenario"] in CURRICULUM_GATE_REGIMES]))

    transfer = _run_transfer(baseline, get_spec("porto"), hidden,
                             max(1, epochs // 3),
                             max(16, trajectories // 3))

    return {
        "benchmark": "scenarios",
        "env": bench_environment(),
        "dataset": "chengdu",
        "budget": {"trajectories": trajectories, "epochs": epochs,
                   "hidden": hidden, "stream_sessions": stream_sessions},
        "num_segments": int(network.num_segments),
        "curriculum_phases": [
            {"epochs": p.epochs, "rates": list(p.rates)}
            for p in curriculum.phases],
        "identity_bit_exact": bool(identity_exact),
        "clean_metrics": clean_metrics,
        "matrix": matrices,
        "curriculum_gate": {
            "regimes": list(CURRICULUM_GATE_REGIMES),
            "baseline_accuracy": round(_mean_gate_accuracy(matrices["baseline"]), 4),
            "curriculum_accuracy": round(_mean_gate_accuracy(matrices["curriculum"]), 4),
        },
        "transfer": transfer,
    }


def print_artifact(artifact: dict) -> None:
    print(f"\nScenario matrix — robustness under degraded traces "
          f"(|V| = {artifact['num_segments']})")
    print(f"  identity bit-exact: {artifact['identity_bit_exact']}")
    header = f"  {'scenario':<14}{'model':<12}{'Acc':>7}{'F1':>7}{'RMSE':>8}" \
             f"{'fixes':>7}{'rev%':>7}{'exact':>7}"
    print(header)
    for tag, matrix in artifact["matrix"].items():
        for cell in matrix:
            s = cell["streaming"]
            print(f"  {cell['scenario']:<14}{tag:<12}"
                  f"{cell['metrics']['Accuracy']:>7.3f}"
                  f"{cell['metrics']['F1 Score']:>7.3f}"
                  f"{cell['metrics']['RMSE']:>8.2f}"
                  f"{cell['mean_input_fixes']:>7.2f}"
                  f"{100.0 * s['revision_rate']:>6.1f}%"
                  f"{s['exact_finalizes']:>4d}/{s['sessions']}")
    gate = artifact["curriculum_gate"]
    print(f"  curriculum gate ({'+'.join(gate['regimes'])}): "
          f"curriculum {gate['curriculum_accuracy']:.4f} vs "
          f"baseline {gate['baseline_accuracy']:.4f}")
    t = artifact["transfer"]
    print(f"  transfer → {t['target_dataset']}: {t['copied']} tensors copied "
          f"({100.0 * t['copied_fraction']:.1f}%), accuracy "
          f"{t['transfer_accuracy']:.4f} vs scratch {t['scratch_accuracy']:.4f}")


def test_scenario_matrix():
    budget = _scen_budget()
    artifact = run_scenarios_bench(
        trajectories=budget["trajectories"], epochs=budget["epochs"],
        hidden=budget["hidden"], stream_sessions=budget["stream_sessions"])
    artifact["floor_scale"] = budget["floor_scale"]
    print_artifact(artifact)

    cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", "benchmarks/_cache"))
    cache_dir.mkdir(parents=True, exist_ok=True)
    with open(cache_dir / ARTIFACT_NAME, "w") as handle:
        json.dump(artifact, handle, indent=1)
    print(f"wrote {cache_dir / ARTIFACT_NAME}")

    # Hard gates at every budget: construction identity, metric identity,
    # streaming finalize exactness, structural transfer.
    assert artifact["identity_bit_exact"]
    identity_cell = artifact["matrix"]["baseline"][0]
    assert identity_cell["scenario"] == "identity"
    assert identity_cell["metrics"] == artifact["clean_metrics"], (
        identity_cell["metrics"], artifact["clean_metrics"])
    for matrix in artifact["matrix"].values():
        for cell in matrix:
            streaming = cell["streaming"]
            assert streaming["exact_finalizes"] == streaming["sessions"], cell
    assert artifact["transfer"]["copied_fraction"] > 0.5, artifact["transfer"]

    # Env-scaled gates: degradation floors and the curriculum advantage.
    for cell in artifact["matrix"]["curriculum"]:
        floor = cell["accuracy_floor"] * budget["floor_scale"]
        assert cell["metrics"]["Accuracy"] >= floor, (
            cell["scenario"], cell["metrics"]["Accuracy"], floor)
    gate = artifact["curriculum_gate"]
    assert (gate["curriculum_accuracy"]
            >= gate["baseline_accuracy"] - budget["margin"]), gate


if __name__ == "__main__":
    test_scenario_matrix()
