"""Table IV — additional datasets: Shanghai and Chengdu-Few.

Shanghai probes a different data distribution; Chengdu-Few (20 % of the
Chengdu corpus, same network/area) probes low-data robustness.  Paper
finding: RNTrajRec still wins both, but its margin over the best baseline
shrinks on Chengdu-Few because transformers are data-hungry (§VI-C).
"""

import pytest

from repro.experiments import format_table, run_experiment

ROW_ORDER = [
    "linear_hmm",
    "dhtr_hmm",
    "t2vec",
    "transformer",
    "mtrajrec",
    "t3s",
    "gts",
    "neutraj",
    "rntrajrec",
]


@pytest.mark.parametrize("dataset", ["shanghai", "chengdu_few"])
def test_table4_rows(dataset, benchmark, budget):
    # Chengdu-Few deliberately uses ~20% of the default trajectory budget.
    trajectories = budget["trajectories"] if dataset == "shanghai" else max(
        60, budget["trajectories"] // 5
    )
    results = [
        run_experiment(dataset=dataset, method=method, keep_every=8,
                       trajectories=trajectories)
        for method in ROW_ORDER
    ]
    print("\n" + format_table(results, f"Table IV — {dataset} (ε_τ = ε_ρ × 8)"))

    by_name = {r.method: r for r in results}
    assert by_name["rntrajrec"].metrics["F1 Score"] >= by_name["transformer"].metrics["F1 Score"]
    for result in results:
        assert result.metrics["RMSE"] >= result.metrics["MAE"]

    benchmark(lambda: format_table(results, "Table IV"))


def test_table4_few_shot_margin_shrinks(benchmark, budget):
    """RNTrajRec's margin over MTrajRec is smaller with 20% of the data."""
    few = max(60, budget["trajectories"] // 5)
    full_rn = run_experiment(dataset="chengdu", method="rntrajrec", keep_every=8)
    full_mt = run_experiment(dataset="chengdu", method="mtrajrec", keep_every=8)
    few_rn = run_experiment(dataset="chengdu_few", method="rntrajrec", keep_every=8,
                            trajectories=few)
    few_mt = run_experiment(dataset="chengdu_few", method="mtrajrec", keep_every=8,
                            trajectories=few)
    full_margin = full_rn.metrics["F1 Score"] - full_mt.metrics["F1 Score"]
    few_margin = few_rn.metrics["F1 Score"] - few_mt.metrics["F1 Score"]
    print(f"\nF1 margin over MTrajRec: full-data {full_margin:+.4f}, few-shot {few_margin:+.4f}")
    # Soft shape check: the few-shot margin should not be dramatically
    # larger than the full-data margin (transformers are data-hungry).
    assert few_margin <= full_margin + 0.10
    benchmark(lambda: (full_margin, few_margin))
