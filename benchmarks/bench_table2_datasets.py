"""Table II — dataset statistics.

Prints the synthetic analogue of the paper's Table II (trajectory counts,
road segments, area, travel time, sample intervals) for all five dataset
configs, and benchmarks dataset materialization (city generation + vehicle
simulation + sample building).
"""

import pytest

from repro.datasets import dataset_names, load_dataset

COLUMNS = [
    "# Trajectories",
    "# Road segments",
    "Area (km2)",
    "Avg travel time (s)",
    "Sample interval (s)",
    "Input interval (s)",
]


def test_table2_statistics(benchmark):
    stats = {}
    for name in dataset_names():
        data = load_dataset(name, num_trajectories=40)
        stats[name] = data.statistics()

    header = f"{'Statistic':<24}" + "".join(f"{n:>14}" for n in stats)
    print("\nTable II — dataset statistics (synthetic analogues)")
    print(header)
    print("-" * len(header))
    for column in COLUMNS:
        row = f"{column:<24}"
        for name in stats:
            row += f"{stats[name][column]:>14}"
        print(row)

    # Shape assertions mirroring the paper's relative scales.
    assert stats["shanghai_l"]["# Road segments"] > stats["chengdu"]["# Road segments"]
    assert stats["shanghai_l"]["Area (km2)"] > stats["porto"]["Area (km2)"]
    assert stats["porto"]["Sample interval (s)"] == 15.0
    assert stats["chengdu"]["Input interval (s)"] == 8 * 12.0
    assert stats["shanghai_l"]["Input interval (s)"] == 16 * 10.0

    # Benchmark: building a small dataset end to end.
    benchmark(lambda: load_dataset("chengdu", num_trajectories=10))
