"""Table V — ablation studies on Chengdu and Porto.

Variants (§VI-G): w/o GRL (plain transformer blocks), w/o GF (concat+FFN
fusion), w/o GAT (feed-forward graph update), w/o GN (layer norm), w/o GCL
(no graph classification loss).  Paper finding: the full model wins on F1;
removing GRL costs the most.
"""

import os

import pytest

from repro.core import RNTrajRecConfig
from repro.experiments import bench_budget, format_table, run_experiment

ABLATIONS = ["grl", "gf", "gat", "gn", "gcl"]


def _config(**overrides) -> RNTrajRecConfig:
    budget = bench_budget()
    return RNTrajRecConfig(
        hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
        receptive_delta=300.0, max_subgraph_nodes=32,
    ).variant(**overrides)


@pytest.mark.parametrize("dataset", ["chengdu", "porto"])
def test_table5_ablations(dataset, benchmark, budget):
    # Ablations run at a reduced budget: relative ordering is the target.
    trajectories = max(120, budget["trajectories"] // 2)

    results = [
        run_experiment(dataset=dataset, method="rntrajrec", keep_every=8,
                       trajectories=trajectories, model_config=_config())
    ]
    for name in ABLATIONS:
        results.append(
            run_experiment(
                dataset=dataset, method="rntrajrec", keep_every=8,
                trajectories=trajectories,
                model_config=_config().ablation(name),
                variant_tag=f"w/o {name.upper()}",
            )
        )
    print("\n" + format_table(results, f"Table V — ablations on {dataset} (ε_τ = ε_ρ × 8)"))

    full = results[0]
    # Full model should be at or near the top on F1 (small budgets are
    # noisy; allow a modest tolerance, as the paper's differences are
    # fractions of a point).
    best_f1 = max(r.metrics["F1 Score"] for r in results)
    assert full.metrics["F1 Score"] >= best_f1 - 0.05

    benchmark(lambda: format_table(results, "Table V"))
