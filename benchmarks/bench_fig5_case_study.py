"""Fig. 5 — case study: recovering one elevated-road trajectory.

The paper visualizes one low-sample elevated-road trajectory recovered by
MTrajRec, GTS+Decoder and RNTrajRec.  Offline we print the per-step
segment comparison and spatial-consistency statistics instead of a map.
The case-study script ``examples/case_study_elevated.py`` produces the
same artifact interactively.
"""

import numpy as np
import pytest

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.train import TrainConfig, Trainer
from repro.baselines import build_baseline
from repro.eval.metrics import elevated_window, f1_score, path_precision_recall
from repro.experiments import get_dataset
from repro.trajectory import make_batch


def _pick_elevated_sample(data):
    for sample in data.test:
        if elevated_window(sample.target, data.network) is not None:
            return sample
    return data.test[0]


def test_fig5_case_study(benchmark, budget):
    data = get_dataset("chengdu", max(120, budget["trajectories"] // 2), 8)
    config = RNTrajRecConfig(hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=32)
    train_config = TrainConfig(epochs=max(6, budget["epochs"] // 2), batch_size=16,
                               learning_rate=5e-3, clip_norm=10.0,
                               teacher_forcing_ratio=0.2, validate=False)

    sample = _pick_elevated_sample(data)
    batch = make_batch([sample])
    truth = sample.target

    rows = {}
    for name in ("mtrajrec", "gts", "rntrajrec"):
        if name == "rntrajrec":
            model = RNTrajRec(data.network, config)
        else:
            model = build_baseline(name, data.network, config)
        Trainer(model, train_config).fit(data.train)
        model.eval()
        rows[name] = model.recover_trajectories(batch)[0]

    print("\nFig. 5 — case study (one elevated-road trajectory, Chengdu ×8)")
    print(f"{'step':>4} {'truth':>7} " + "".join(f"{n:>11}" for n in rows))
    for j in range(len(truth)):
        line = f"{j:>4} {truth.segments[j]:>7} "
        for name in rows:
            line += f"{rows[name].segments[j]:>11}"
        print(line)

    for name, pred in rows.items():
        recall, precision = path_precision_recall(truth.travel_path(), pred.travel_path())
        # Spatial consistency: fraction of adjacent prediction pairs that
        # are graph-consistent (same segment or connected).
        consistent = sum(
            1
            for a, b in zip(pred.segments, pred.segments[1:])
            if a == b or int(b) in data.network.out_neighbors[int(a)]
        ) / max(len(pred) - 1, 1)
        print(f"{name:>11}: F1={f1_score(recall, precision):.3f} "
              f"spatial-consistency={consistent:.3f}")

    # All models produce full-length recoveries.
    for pred in rows.values():
        assert len(pred) == len(truth)

    benchmark(lambda: rows["rntrajrec"].travel_path())
