"""Fig. 7 — parameter analysis on Chengdu ×8.

(a) road-network encoder: GridGNN vs GCN / GIN / GAT;
(b) number of GPSFormer blocks N ∈ {1, 2, 3};
(c) receptive field δ ∈ {100, 300, 600} m;
(d) influence scale γ ∈ {10, 30, 50} m.

Paper findings mirrored as soft shape checks: GridGNN is the best road
encoder; performance is insensitive to γ; larger δ helps up to a point.
Sweeps run at a reduced budget — the relative ordering is the target.
"""

import numpy as np
import pytest

from repro.core import RNTrajRecConfig
from repro.experiments import bench_budget, run_experiment


def _config(**overrides) -> RNTrajRecConfig:
    budget = bench_budget()
    return RNTrajRecConfig(
        hidden_dim=budget["hidden"], num_heads=4, dropout=0.0,
        receptive_delta=300.0, max_subgraph_nodes=32,
    ).variant(**overrides)


def _sweep_budget(budget):
    return max(100, budget["trajectories"] // 3)


def _run(tag, budget, **overrides):
    return run_experiment(
        dataset="chengdu", method="rntrajrec", keep_every=8,
        trajectories=_sweep_budget(budget),
        model_config=_config(**overrides), variant_tag=tag,
    )


def test_fig7a_road_encoders(benchmark, budget):
    results = {}
    for kind in ("gridgnn", "gcn", "gin", "gat"):
        results[kind] = _run(f"enc={kind}", budget, road_encoder=kind)

    print("\nFig. 7(a) — road network representation")
    for kind, result in results.items():
        print(f"  {kind:<10} F1={result.metrics['F1 Score']:.4f} "
              f"ACC={result.metrics['Accuracy']:.4f}")

    best = max(results.values(), key=lambda r: r.metrics["F1 Score"])
    # GridGNN should be at or near the best (small-budget noise tolerance).
    assert results["gridgnn"].metrics["F1 Score"] >= best.metrics["F1 Score"] - 0.04
    benchmark(lambda: {k: r.metrics for k, r in results.items()})


def test_fig7b_gpsformer_depth(benchmark, budget):
    results = {}
    for n in (1, 2, 3):
        results[n] = _run(f"N={n}", budget, num_gpsformer_layers=n)

    print("\nFig. 7(b) — number of GPSFormer blocks")
    for n, result in results.items():
        print(f"  N={n}  F1={result.metrics['F1 Score']:.4f} "
              f"ACC={result.metrics['Accuracy']:.4f}")

    for result in results.values():
        assert result.metrics["F1 Score"] > 0.0
    benchmark(lambda: {n: r.metrics for n, r in results.items()})


def test_fig7c_receptive_field(benchmark, budget):
    results = {}
    for delta in (100.0, 300.0, 600.0):
        results[delta] = _run(f"delta={delta:.0f}", budget, receptive_delta=delta)

    print("\nFig. 7(c) — receptive field δ")
    for delta, result in results.items():
        print(f"  δ={delta:>5.0f}m  F1={result.metrics['F1 Score']:.4f} "
              f"ACC={result.metrics['Accuracy']:.4f}")

    # A tiny receptive field throws away context: δ=300 should not be
    # dramatically worse than δ=100.
    assert results[300.0].metrics["F1 Score"] >= results[100.0].metrics["F1 Score"] - 0.05
    benchmark(lambda: {d: r.metrics for d, r in results.items()})


def test_fig7d_gamma_insensitivity(benchmark, budget):
    results = {}
    for gamma in (10.0, 30.0, 50.0):
        results[gamma] = _run(f"gamma={gamma:.0f}", budget, influence_gamma=gamma)

    print("\nFig. 7(d) — influence scale γ")
    for gamma, result in results.items():
        print(f"  γ={gamma:>4.0f}m  F1={result.metrics['F1 Score']:.4f} "
              f"ACC={result.metrics['Accuracy']:.4f}")

    # Paper: performance varies little with γ (GPSFormer reweights nodes
    # dynamically).  Check the spread is modest.
    f1s = [r.metrics["F1 Score"] for r in results.values()]
    assert max(f1s) - min(f1s) < 0.12
    benchmark(lambda: {g: r.metrics for g, r in results.items()})
